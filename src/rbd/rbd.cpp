#include "rbd/rbd.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace rascad::rbd {

namespace {

double clamp_probability(double p, const char* what) {
  if (std::isnan(p) || p < -1e-12 || p > 1.0 + 1e-12) {
    throw std::invalid_argument(std::string(what) +
                                ": probability outside [0, 1]");
  }
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace

double at_least_k_of(const std::vector<double>& p, std::size_t k) {
  if (k > p.size()) return 0.0;
  if (k == 0) return 1.0;
  // dist[j] = P(exactly j of the first i components up); convolve one
  // component at a time.
  std::vector<double> dist(p.size() + 1, 0.0);
  dist[0] = 1.0;
  std::size_t seen = 0;
  for (double pi : p) {
    clamp_probability(pi, "at_least_k_of");
    ++seen;
    for (std::size_t j = seen; j-- > 0;) {
      dist[j + 1] += dist[j] * pi;
      dist[j] *= (1.0 - pi);
    }
  }
  double acc = 0.0;
  for (std::size_t j = k; j <= p.size(); ++j) acc += dist[j];
  return std::min(1.0, acc);
}

RbdNodePtr RbdNode::leaf(std::string name, double availability,
                         TimeFunction point_availability,
                         TimeFunction reliability) {
  auto node = std::shared_ptr<RbdNode>(new RbdNode());
  node->kind_ = RbdKind::kLeaf;
  node->name_ = std::move(name);
  node->availability_ = clamp_probability(availability, "RbdNode::leaf");
  node->point_availability_ = std::move(point_availability);
  node->reliability_ = std::move(reliability);
  return node;
}

RbdNodePtr RbdNode::series(std::string name, std::vector<RbdNodePtr> children) {
  if (children.empty()) {
    throw std::invalid_argument("RbdNode::series: no children");
  }
  for (const auto& c : children) {
    if (!c) throw std::invalid_argument("RbdNode::series: null child");
  }
  auto node = std::shared_ptr<RbdNode>(new RbdNode());
  node->kind_ = RbdKind::kSeries;
  node->name_ = std::move(name);
  node->children_ = std::move(children);
  return node;
}

RbdNodePtr RbdNode::parallel(std::string name,
                             std::vector<RbdNodePtr> children) {
  if (children.empty()) {
    throw std::invalid_argument("RbdNode::parallel: no children");
  }
  for (const auto& c : children) {
    if (!c) throw std::invalid_argument("RbdNode::parallel: null child");
  }
  auto node = std::shared_ptr<RbdNode>(new RbdNode());
  node->kind_ = RbdKind::kParallel;
  node->name_ = std::move(name);
  node->children_ = std::move(children);
  return node;
}

RbdNodePtr RbdNode::k_of_n(std::string name, std::size_t k,
                           std::vector<RbdNodePtr> children) {
  if (children.empty()) {
    throw std::invalid_argument("RbdNode::k_of_n: no children");
  }
  if (k == 0 || k > children.size()) {
    throw std::invalid_argument("RbdNode::k_of_n: k must be in [1, n]");
  }
  for (const auto& c : children) {
    if (!c) throw std::invalid_argument("RbdNode::k_of_n: null child");
  }
  auto node = std::shared_ptr<RbdNode>(new RbdNode());
  node->kind_ = RbdKind::kKofN;
  node->name_ = std::move(name);
  node->children_ = std::move(children);
  node->k_ = k;
  return node;
}

double RbdNode::combine(const std::vector<double>& child_probs) const {
  switch (kind_) {
    case RbdKind::kLeaf:
      throw std::logic_error("RbdNode::combine called on a leaf");
    case RbdKind::kSeries: {
      double acc = 1.0;
      for (double p : child_probs) acc *= p;
      return acc;
    }
    case RbdKind::kParallel: {
      double acc = 1.0;
      for (double p : child_probs) acc *= (1.0 - p);
      return 1.0 - acc;
    }
    case RbdKind::kKofN:
      return at_least_k_of(child_probs, k_);
  }
  throw std::logic_error("RbdNode::combine: unknown kind");
}

double RbdNode::evaluate(
    const std::function<double(const RbdNode&)>& leaf_value) const {
  if (kind_ == RbdKind::kLeaf) {
    return clamp_probability(leaf_value(*this), "RbdNode::evaluate");
  }
  std::vector<double> probs;
  probs.reserve(children_.size());
  for (const auto& c : children_) probs.push_back(c->evaluate(leaf_value));
  return combine(probs);
}

double RbdNode::availability() const {
  return evaluate([](const RbdNode& leaf) { return leaf.availability_; });
}

double RbdNode::point_availability(double t) const {
  return evaluate([t](const RbdNode& leaf) {
    return leaf.point_availability_ ? leaf.point_availability_(t)
                                    : leaf.availability_;
  });
}

double RbdNode::reliability(double t) const {
  return evaluate([t](const RbdNode& leaf) {
    return leaf.reliability_ ? leaf.reliability_(t) : 1.0;
  });
}

double RbdNode::interval_availability(double horizon,
                                      std::size_t intervals) const {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(
        "RbdNode::interval_availability: horizon must be positive");
  }
  if (intervals < 2) intervals = 2;
  if (intervals % 2 != 0) ++intervals;  // Simpson needs an even count
  const double h = horizon / static_cast<double>(intervals);
  double acc = point_availability(0.0) + point_availability(horizon);
  for (std::size_t i = 1; i < intervals; ++i) {
    const double t = h * static_cast<double>(i);
    acc += point_availability(t) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * h / 3.0 / horizon;
}

double RbdNode::mttf_numeric(double horizon, std::size_t intervals) const {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(
        "RbdNode::mttf_numeric: horizon must be positive");
  }
  if (intervals < 2) intervals = 2;
  if (intervals % 2 != 0) ++intervals;
  const double h = horizon / static_cast<double>(intervals);
  double acc = reliability(0.0) + reliability(horizon);
  for (std::size_t i = 1; i < intervals; ++i) {
    const double t = h * static_cast<double>(i);
    acc += reliability(t) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

std::size_t RbdNode::leaf_count() const {
  if (kind_ == RbdKind::kLeaf) return 1;
  std::size_t acc = 0;
  for (const auto& c : children_) acc += c->leaf_count();
  return acc;
}

void RbdNode::print(std::ostream& os, int indent) const {
  for (int i = 0; i < indent; ++i) os << "  ";
  switch (kind_) {
    case RbdKind::kLeaf:
      os << name_ << "  A=" << availability_ << '\n';
      return;
    case RbdKind::kSeries:
      os << name_ << " [series]  A=" << availability() << '\n';
      break;
    case RbdKind::kParallel:
      os << name_ << " [parallel]  A=" << availability() << '\n';
      break;
    case RbdKind::kKofN:
      os << name_ << " [" << k_ << "-of-" << children_.size()
         << "]  A=" << availability() << '\n';
      break;
  }
  for (const auto& c : children_) c->print(os, indent + 1);
}

std::ostream& operator<<(std::ostream& os, const RbdNode& node) {
  node.print(os);
  return os;
}

}  // namespace rascad::rbd
