// Reliability block diagrams.
//
// RAScad translates every MG diagram into a serial RBD over its blocks and
// lets GMB users draw general series / parallel / K-of-N structures. Blocks
// are assumed independent (the paper's stated modeling assumption), so
// structure probabilities compose by products and convolutions.
//
// A leaf carries a steady-state availability plus optional time-dependent
// point-availability and reliability functions (typically closures over a
// solved Markov model), so the same tree answers steady-state, transient,
// and reliability queries.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace rascad::rbd {

class RbdNode;
using RbdNodePtr = std::shared_ptr<const RbdNode>;

/// Time-dependent probability (point availability or reliability at t).
using TimeFunction = std::function<double(double)>;

enum class RbdKind { kLeaf, kSeries, kParallel, kKofN };

class RbdNode {
 public:
  /// Leaf with a constant steady-state availability and optional
  /// time-dependent curves. Probabilities must lie in [0, 1].
  static RbdNodePtr leaf(std::string name, double availability,
                         TimeFunction point_availability = nullptr,
                         TimeFunction reliability = nullptr);

  /// All children required (the MG diagram structure).
  static RbdNodePtr series(std::string name, std::vector<RbdNodePtr> children);

  /// At least one child required.
  static RbdNodePtr parallel(std::string name,
                             std::vector<RbdNodePtr> children);

  /// At least k of the children required (1 <= k <= n). Children may be
  /// heterogeneous; the up-count distribution is computed by convolution.
  static RbdNodePtr k_of_n(std::string name, std::size_t k,
                           std::vector<RbdNodePtr> children);

  RbdKind kind() const noexcept { return kind_; }
  const std::string& name() const noexcept { return name_; }
  const std::vector<RbdNodePtr>& children() const noexcept { return children_; }
  std::size_t required() const noexcept { return k_; }

  /// Steady-state availability of the subtree.
  double availability() const;

  /// Point availability at time t. Leaves without a point-availability
  /// curve fall back to their steady-state value.
  double point_availability(double t) const;

  /// Reliability at time t (no-repair survival). Leaves without a
  /// reliability curve are treated as perfectly reliable; the callers that
  /// need strict semantics should set curves on every leaf.
  double reliability(double t) const;

  /// Interval availability over (0, horizon): numeric integration
  /// (composite Simpson) of the composed point availability.
  double interval_availability(double horizon, std::size_t intervals = 512) const;

  /// MTTF = integral of R(t): adaptive truncated integration. `horizon`
  /// bounds the integration range; the tail beyond it is dropped.
  double mttf_numeric(double horizon, std::size_t intervals = 4096) const;

  /// Total number of leaves in the subtree.
  std::size_t leaf_count() const;

  /// Text rendering of the diagram tree with availabilities.
  void print(std::ostream& os, int indent = 0) const;

 private:
  RbdNode() = default;

  /// Generic structure evaluation given per-child probabilities.
  double combine(const std::vector<double>& child_probs) const;
  double evaluate(const std::function<double(const RbdNode&)>& leaf_value) const;

  RbdKind kind_ = RbdKind::kLeaf;
  std::string name_;
  std::vector<RbdNodePtr> children_;
  std::size_t k_ = 0;  // for kKofN
  double availability_ = 1.0;
  TimeFunction point_availability_;
  TimeFunction reliability_;
};

std::ostream& operator<<(std::ostream& os, const RbdNode& node);

/// P(at least k of the independent events with probabilities p occur),
/// by exact convolution of the up-count distribution. Exposed for tests
/// and the baselines module.
double at_least_k_of(const std::vector<double>& p, std::size_t k);

}  // namespace rascad::rbd
