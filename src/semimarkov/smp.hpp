// Semi-Markov processes (SMPs) — the GMB module's third model type.
//
// An SMP is specified by its embedded transition probabilities and per-state
// sojourn-time distributions (general, not just exponential). Steady-state
// probabilities follow the classic ratio formula
//     pi_j = nu_j * h_j / sum_i nu_i * h_i
// where nu is the stationary distribution of the embedded DTMC and h the
// mean sojourn times. This is exactly the level of semi-Markov support a
// RAScad GMB user gets for steady-state availability.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "linalg/dense.hpp"
#include "markov/dtmc.hpp"

namespace rascad::semimarkov {

class SemiMarkovProcess;

class SmpBuilder {
 public:
  /// Adds a state with a reward rate and its sojourn-time distribution.
  /// Returns the state index. The sojourn may be null if the state is later
  /// configured through set_exponential().
  std::size_t add_state(std::string name, double reward,
                        dist::DistributionPtr sojourn = nullptr);

  /// Embedded transition probability from -> to; each row must sum to 1 at
  /// build time.
  void add_transition(std::size_t from, std::size_t to, double probability);

  /// Sets (or replaces) the sojourn distribution of an existing state.
  void set_sojourn(std::size_t state, dist::DistributionPtr sojourn);

  /// Convenience for exponential races: sets the sojourn of `from` to
  /// Exp(sum of rates) and the embedded probabilities to rate/total,
  /// matching CTMC semantics. Replaces any previously set sojourn; must be
  /// the only source of arcs for that state.
  void set_exponential(std::size_t from,
                       const std::vector<std::pair<std::size_t, double>>& rate_arcs);

  /// Validates (every state has a sojourn distribution, rows sum to 1) and
  /// builds. Throws std::invalid_argument on violations.
  SemiMarkovProcess build() const;

  /// Builds a process that may contain absorbing states: a state with no
  /// outgoing probability mass is absorbing (its sojourn may be null).
  /// Such processes support first-passage analysis but not steady_state().
  SemiMarkovProcess build_with_absorbing() const;

 private:
  struct State {
    std::string name;
    double reward;
    dist::DistributionPtr sojourn;
  };
  struct Arc {
    std::size_t from;
    std::size_t to;
    double p;
  };
  std::vector<State> states_;
  std::vector<Arc> arcs_;
};

class SemiMarkovProcess {
 public:
  std::size_t size() const noexcept { return states_.size(); }
  const std::string& state_name(std::size_t i) const {
    return states_.at(i).name;
  }
  double reward(std::size_t i) const { return states_.at(i).reward; }
  double mean_sojourn(std::size_t i) const {
    return states_.at(i).sojourn->mean();
  }
  const dist::Distribution& sojourn(std::size_t i) const {
    return *states_.at(i).sojourn;
  }
  const markov::Dtmc& embedded() const noexcept { return embedded_; }

  std::optional<std::size_t> find_state(const std::string& name) const;

  /// True if state i has no outgoing probability mass.
  bool is_absorbing(std::size_t i) const;

  /// Steady-state (long-run fraction of time) probabilities. Throws
  /// resilience::SolveError(kInvalidInput) if the process has absorbing
  /// states (historically std::domain_error).
  linalg::Vector steady_state() const;

  /// Expected long-run reward rate (steady-state availability for 0/1
  /// rewards).
  double steady_state_reward() const;

  /// Mean time to reach any absorbing state from `start` (Markov-renewal
  /// first passage: t_i = h_i + sum_j P_ij t_j over transient states).
  /// Throws std::invalid_argument if the process has no absorbing state.
  double mean_time_to_absorption(std::size_t start) const;

 private:
  friend class SmpBuilder;
  struct State {
    std::string name;
    double reward;
    dist::DistributionPtr sojourn;
  };
  std::vector<State> states_;
  markov::Dtmc embedded_;
  std::vector<bool> absorbing_;  // empty == no absorbing states
};

}  // namespace rascad::semimarkov
