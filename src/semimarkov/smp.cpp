#include "semimarkov/smp.hpp"

#include "resilience/solve_error.hpp"

#include <stdexcept>
#include <utility>

#include "linalg/lu.hpp"

namespace rascad::semimarkov {

std::size_t SmpBuilder::add_state(std::string name, double reward,
                                  dist::DistributionPtr sojourn) {
  if (reward < 0.0) {
    throw std::invalid_argument("SmpBuilder: reward must be non-negative");
  }
  for (const State& s : states_) {
    if (s.name == name) {
      throw std::invalid_argument("SmpBuilder: duplicate state name '" + name +
                                  "'");
    }
  }
  states_.push_back({std::move(name), reward, std::move(sojourn)});
  return states_.size() - 1;
}

void SmpBuilder::add_transition(std::size_t from, std::size_t to,
                                double probability) {
  if (from >= states_.size() || to >= states_.size()) {
    throw std::out_of_range("SmpBuilder: transition endpoint out of range");
  }
  if (!(probability > 0.0) || probability > 1.0 + 1e-12) {
    throw std::invalid_argument("SmpBuilder: probability must be in (0, 1]");
  }
  arcs_.push_back({from, to, probability});
}

void SmpBuilder::set_sojourn(std::size_t state,
                             dist::DistributionPtr sojourn) {
  if (state >= states_.size()) {
    throw std::out_of_range("SmpBuilder::set_sojourn: state out of range");
  }
  if (!sojourn) {
    throw std::invalid_argument("SmpBuilder::set_sojourn: null distribution");
  }
  states_[state].sojourn = std::move(sojourn);
}

void SmpBuilder::set_exponential(
    std::size_t from,
    const std::vector<std::pair<std::size_t, double>>& rate_arcs) {
  if (from >= states_.size()) {
    throw std::out_of_range("SmpBuilder::set_exponential: state out of range");
  }
  if (rate_arcs.empty()) {
    throw std::invalid_argument("SmpBuilder::set_exponential: no arcs");
  }
  double total = 0.0;
  for (const auto& [to, rate] : rate_arcs) {
    if (to >= states_.size()) {
      throw std::out_of_range(
          "SmpBuilder::set_exponential: target out of range");
    }
    if (!(rate > 0.0)) {
      throw std::invalid_argument(
          "SmpBuilder::set_exponential: rate must be positive");
    }
    total += rate;
  }
  states_[from].sojourn = dist::exponential(total);
  for (const auto& [to, rate] : rate_arcs) {
    arcs_.push_back({from, to, rate / total});
  }
}

SemiMarkovProcess SmpBuilder::build() const {
  if (states_.empty()) {
    throw std::invalid_argument("SmpBuilder: process has no states");
  }
  markov::DtmcBuilder db;
  for (const State& s : states_) {
    if (!s.sojourn) {
      throw std::invalid_argument("SmpBuilder: state '" + s.name +
                                  "' has no sojourn distribution");
    }
    db.add_state(s.name);
  }
  for (const Arc& a : arcs_) db.add_transition(a.from, a.to, a.p);

  SemiMarkovProcess smp;
  smp.embedded_ = db.build();
  smp.states_.reserve(states_.size());
  for (const State& s : states_) {
    smp.states_.push_back({s.name, s.reward, s.sojourn});
  }
  return smp;
}

SemiMarkovProcess SmpBuilder::build_with_absorbing() const {
  if (states_.empty()) {
    throw std::invalid_argument("SmpBuilder: process has no states");
  }
  std::vector<double> out_mass(states_.size(), 0.0);
  for (const Arc& a : arcs_) out_mass[a.from] += a.p;

  markov::DtmcBuilder db;
  SemiMarkovProcess smp;
  smp.absorbing_.assign(states_.size(), false);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    db.add_state(s.name);
    if (out_mass[i] == 0.0) {
      smp.absorbing_[i] = true;
    } else if (!s.sojourn) {
      throw std::invalid_argument("SmpBuilder: transient state '" + s.name +
                                  "' has no sojourn distribution");
    }
  }
  for (const Arc& a : arcs_) db.add_transition(a.from, a.to, a.p);
  // Embedded-chain convention: absorbing states self-loop.
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (smp.absorbing_[i]) db.add_transition(i, i, 1.0);
  }
  smp.embedded_ = db.build();
  smp.states_.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    smp.states_.push_back(
        {s.name, s.reward,
         s.sojourn ? s.sojourn : dist::deterministic(0.0)});
  }
  return smp;
}

std::optional<std::size_t> SemiMarkovProcess::find_state(
    const std::string& name) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return i;
  }
  return std::nullopt;
}

bool SemiMarkovProcess::is_absorbing(std::size_t i) const {
  if (i >= states_.size()) {
    throw std::out_of_range("SemiMarkovProcess::is_absorbing: out of range");
  }
  return !absorbing_.empty() && absorbing_[i];
}

double SemiMarkovProcess::mean_time_to_absorption(std::size_t start) const {
  if (start >= states_.size()) {
    throw std::out_of_range(
        "SemiMarkovProcess::mean_time_to_absorption: out of range");
  }
  std::vector<std::size_t> transient;
  std::vector<std::ptrdiff_t> position(states_.size(), -1);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!is_absorbing(i)) {
      position[i] = static_cast<std::ptrdiff_t>(transient.size());
      transient.push_back(i);
    }
  }
  if (transient.size() == states_.size()) {
    throw std::invalid_argument(
        "SemiMarkovProcess::mean_time_to_absorption: no absorbing states");
  }
  if (is_absorbing(start)) return 0.0;

  // Solve (I - P_TT) t = h_T.
  const std::size_t m = transient.size();
  linalg::DenseMatrix a(m, m);
  linalg::Vector h(m);
  const auto& p = embedded_.transition_matrix();
  for (std::size_t r = 0; r < m; ++r) {
    a(r, r) = 1.0;
    const auto row = p.row(transient[r]);
    for (std::size_t k = 0; k < row.size; ++k) {
      const std::ptrdiff_t c = position[row.cols[k]];
      if (c >= 0) a(r, static_cast<std::size_t>(c)) -= row.values[k];
    }
    h[r] = states_[transient[r]].sojourn->mean();
  }
  const linalg::Vector t = linalg::lu_solve(std::move(a), h);
  return t[static_cast<std::size_t>(position[start])];
}

linalg::Vector SemiMarkovProcess::steady_state() const {
  if (!absorbing_.empty()) {
    for (std::size_t i = 0; i < absorbing_.size(); ++i) {
      if (absorbing_[i]) {
        throw resilience::SolveError(
            resilience::SolveCause::kInvalidInput,
            "SemiMarkovProcess::steady_state",
            "process has absorbing states");
      }
    }
  }
  const linalg::Vector nu = embedded_.stationary();
  linalg::Vector pi(size());
  for (std::size_t i = 0; i < size(); ++i) {
    pi[i] = nu[i] * states_[i].sojourn->mean();
  }
  linalg::normalize_sum(pi);
  return pi;
}

double SemiMarkovProcess::steady_state_reward() const {
  const linalg::Vector pi = steady_state();
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += pi[i] * states_[i].reward;
  return acc;
}

}  // namespace rascad::semimarkov
