// Grassmann-Taksar-Heyman (GTH) elimination — the numerically exact
// last-resort rung of the steady-state ladder.
//
// GTH computes the stationary distribution of an irreducible chain by a
// state-elimination recurrence that involves only additions, multiplications
// and divisions of non-negative quantities: no subtractions means no
// catastrophic cancellation, so the result carries componentwise relative
// accuracy even on generators whose rates span many orders of magnitude
// (exactly the ill-conditioned chains where the direct and iterative rungs
// go wrong; see O'Cinneide 1993 for the error analysis). The price is a
// dense O(n^3) elimination, which is why it sits at the bottom of the
// ladder rather than the top.
#pragma once

#include "linalg/dense.hpp"
#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"

namespace rascad::resilience {

/// Stationary distribution of an irreducible CTMC by GTH elimination on the
/// off-diagonal rates of its generator. Throws SolveError(kInvalidInput) if
/// elimination encounters a state with no remaining outflow (the chain is
/// reducible, so no unique stationary distribution exists).
linalg::Vector gth_stationary(const markov::Ctmc& chain);

/// Stationary distribution of an irreducible DTMC (pi = pi P). Self-loop
/// probabilities are ignored — the stationary vector of P equals that of
/// the generator P - I, whose off-diagonal entries GTH consumes.
linalg::Vector gth_stationary(const markov::Dtmc& dtmc);

/// Core elimination on a dense matrix of non-negative off-diagonal
/// transition weights (rates or probabilities; the diagonal is ignored).
/// Exposed for tests and for callers that already hold a dense workspace.
linalg::Vector gth_stationary_dense(linalg::DenseMatrix weights);

}  // namespace rascad::resilience
