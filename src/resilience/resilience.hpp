// The solver resilience layer: fallback ladders with health checks.
//
// Every numerical entry point of the analysis stack gets a resilient
// wrapper here. The flagship is the steady-state ladder
//
//   Direct -> BiCGStab -> SOR -> Power -> GTH
//
// where each rung's output passes the health checks of health.hpp (NaN/Inf
// scan, negative-mass clamping, independent residual re-check, condition
// estimate on the direct path) before it is accepted; a rung that throws or
// fails verification escalates to the next one, and the whole episode is
// recorded in a SolveTrace that callers and reports can inspect. The final
// GTH rung is subtraction-free and numerically exact, so the ladder only
// fails outright on structurally unusable input or an exhausted budget.
//
// Budgets (state count, iterations, wall-clock deadline) live in
// ResilienceConfig; the FaultPlan member is the test hook that forces rung
// failures (fault_injection.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "markov/ctmc.hpp"
#include "markov/dtmc.hpp"
#include "markov/steady_state.hpp"
#include "markov/transient.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/health.hpp"
#include "resilience/solve_error.hpp"
#include "semimarkov/smp.hpp"

namespace rascad::resilience {

struct ResilienceConfig {
  /// Rungs tried in order. The default ladder starts with the cheap exact
  /// method and ends with the subtraction-free exact one.
  std::vector<Rung> rungs = {Rung::kDirect, Rung::kBiCgStab, Rung::kSor,
                             Rung::kPower, Rung::kGth};
  /// Tolerance / iteration budget / relaxation shared by the rungs.
  markov::SteadyStateOptions base;
  /// State-space budget: chains larger than this are refused up front with
  /// SolveError(kBudgetExceeded) instead of attempting an O(n^3) rung.
  std::size_t max_states = 200'000;
  /// Wall-clock deadline over the whole ladder in milliseconds; realized
  /// as a deadline child token of `cancel`, so it is also observed *inside*
  /// rungs at solver checkpoints (pre-robust behaviour only checked between
  /// rungs). 0 disables.
  double deadline_ms = 0.0;
  /// Cooperative cancellation for the whole episode. Fans out to each
  /// attempt as a child token; a stopped episode token aborts the ladder
  /// with SolveError(kCancelled / kDeadlineExceeded). Inert by default.
  robust::CancelToken cancel;
  /// Wall-clock budget per rung attempt in milliseconds, charged against
  /// the request deadline: each attempt runs under a child token expiring
  /// after this long. A rung that only blows its *own* budget escalates to
  /// the next rung; the episode aborts only when the episode deadline /
  /// cancellation fired. 0 disables.
  double rung_deadline_ms = 0.0;
  /// Retries of the *same* rung on SolveError(kTransient) before the
  /// failure escalates, with deterministic jittered exponential backoff.
  std::size_t transient_retries = 0;
  /// Base backoff before the first transient retry; doubles per retry and
  /// is scaled by a deterministic jitter in [0.5, 1.5) derived from
  /// retry_jitter_seed, the rung, and the retry index.
  double retry_backoff_ms = 0.1;
  std::uint64_t retry_jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Iteration cadence of solver-loop cancellation checkpoints (forwarded
  /// into markov::SteadyStateOptions along with the attempt token).
  std::size_t cancel_check_interval = 64;
  /// When > 0 and the episode carries a token, the episode registers with
  /// the stall watchdog: a stop the solve fails to observe within this
  /// many milliseconds bumps robust.stalled. 0 disables.
  double stall_budget_ms = 0.0;
  HealthCheckConfig health;
  /// Test-only deterministic fault injection; inert when empty.
  FaultPlan fault_plan;
};

/// Builds a config whose ladder starts at the rung matching
/// `opts.method` (callers that explicitly ask for, say, SOR still get their
/// method first) and continues with the remaining default rungs.
ResilienceConfig config_from(const markov::SteadyStateOptions& opts);

/// One rung's attempt, successful or not.
struct RungAttempt {
  Rung rung = Rung::kDirect;
  bool success = false;
  SolveCause cause = SolveCause::kNonConverged;  // valid when !success
  std::string message;                           // failure detail
  std::size_t iterations = 0;
  double residual = 0.0;            // solver-reported metric
  double residual_check = 0.0;      // independent ||pi Q||_inf re-check
  double condition_estimate = 0.0;  // direct rung only; 0 = not computed
  double clamped_mass = 0.0;        // negative mass clamped by health layer
  double duration_ms = 0.0;
};

/// Where a solution came from, now that block solves can be memoized or
/// reused from a baseline model. A non-fresh trace still carries the
/// attempts of the ladder episode that originally produced the numbers,
/// so resilience reporting stays honest about which rung did the work.
enum class SolveSource {
  kFresh,          // a ladder episode ran for this request
  kCacheHit,       // copied from the solve-memoization cache
  kBaselineReuse,  // reused from a baseline SystemModel during rebuild
};

inline const char* to_string(SolveSource source) {
  switch (source) {
    case SolveSource::kFresh: return "fresh";
    case SolveSource::kCacheHit: return "cache-hit";
    case SolveSource::kBaselineReuse: return "baseline-reuse";
  }
  return "unknown";
}

/// Full record of a ladder episode.
struct SolveTrace {
  std::vector<RungAttempt> attempts;
  bool success = false;
  Rung final_rung = Rung::kDirect;  // valid when success
  double total_ms = 0.0;
  /// Provenance of the numbers this trace vouches for.
  SolveSource source = SolveSource::kFresh;

  std::size_t escalations() const noexcept {
    return attempts.empty() ? 0 : attempts.size() - 1;
  }
  /// Total solver iterations across every attempt of the episode.
  std::size_t total_iterations() const noexcept {
    std::size_t acc = 0;
    for (const auto& a : attempts) acc += a.iterations;
    return acc;
  }
  /// One-line human-readable summary, e.g.
  /// "direct failed (bad-conditioning) -> bicgstab ok [2 attempts, 0.41 ms]";
  /// non-fresh traces are prefixed with their provenance, e.g.
  /// "[cache-hit] direct ok [1 attempt, 0.08 ms]".
  std::string summary() const;
};

struct ResilientResult {
  markov::SteadyStateResult result;
  SolveTrace trace;
};

/// Steady-state distribution through the fallback ladder. Throws SolveError
/// (carrying the last rung's cause; the trace is embedded in the message)
/// only if every configured rung fails.
ResilientResult solve_steady_state_resilient(
    const markov::Ctmc& chain, const ResilienceConfig& config = {});

/// Batched steady-state ladder entry for chains sharing one generator
/// sparsity pattern (structure-sharing sweep points). When the first
/// configured rung is iterative (kSor / kBiCgStab), all lanes are swept
/// through one lane-interleaved solve (markov::solve_steady_state_batched)
/// and each successful lane gets a single-attempt SolveTrace whose numbers
/// are bitwise identical to running that rung on the lane alone. Entry j is
/// nullopt when the batched path could not finish lane j — ineligible chain
/// (size 1, over budget, absorbing state, pattern mismatch), rung failure,
/// or failed health check; callers fall back to
/// solve_steady_state_resilient per nullopt lane, which reproduces the
/// full-ladder behaviour (escalation or exception) exactly.
std::vector<std::optional<ResilientResult>> solve_steady_state_resilient_batched(
    const std::vector<const markov::Ctmc*>& chains,
    const ResilienceConfig& config = {});

/// DTMC stationary distribution through a Direct -> Power -> GTH ladder
/// (rungs without a DTMC meaning are skipped from config.rungs).
ResilientResult stationary_resilient(const markov::Dtmc& dtmc,
                                     const ResilienceConfig& config = {});

/// Semi-Markov steady state: the embedded DTMC goes through the ladder,
/// then the sojourn-time ratio formula is applied and health-checked.
ResilientResult smp_steady_state_resilient(
    const semimarkov::SemiMarkovProcess& process,
    const ResilienceConfig& config = {});

/// Transient distribution with a uniformization -> relaxed-budget
/// uniformization -> RKF45 ODE ladder, NaN/Inf-scanned at every rung.
struct ResilientTransientResult {
  linalg::Vector distribution;
  SolveTrace trace;
};
ResilientTransientResult transient_distribution_resilient(
    const markov::Ctmc& chain, const linalg::Vector& pi0, double t,
    const markov::TransientOptions& opts = {},
    const ResilienceConfig& config = {});

/// Mean time to failure (down states absorbing) with a Direct -> BiCGStab
/// -> SOR ladder on the fundamental system (-Q_TT) tau = 1. Returns 0 for
/// chains that cannot fail. `trace` (optional) receives the episode.
double mttf_resilient(const markov::Ctmc& chain, markov::StateIndex initial,
                      const ResilienceConfig& config = {},
                      SolveTrace* trace = nullptr);

}  // namespace rascad::resilience
