#include "resilience/fault_injection.hpp"

#include <limits>
#include <string>

namespace rascad::resilience {

void corrupt_result(linalg::Vector& pi, FaultKind kind) {
  if (pi.empty()) return;
  switch (kind) {
    case FaultKind::kNanResult:
      pi[pi.size() / 2] = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::kNegativeResult:
      pi[pi.size() / 2] -= 0.5;  // far beyond any clamp tolerance
      break;
    case FaultKind::kNone:
    case FaultKind::kThrowSingular:
    case FaultKind::kThrowNonConverged:
      break;
  }
}

markov::Ctmc with_scaled_rates(const markov::Ctmc& chain, double factor) {
  if (!(factor > 0.0)) {
    throw SolveError(SolveCause::kInvalidInput, "with_scaled_rates",
                     "scale factor must be positive");
  }
  markov::CtmcBuilder builder;
  for (const auto& s : chain.states()) builder.add_state(s.name, s.reward);
  const auto& q = chain.generator();
  for (markov::StateIndex i = 0; i < chain.size(); ++i) {
    const auto row = q.row(i);
    for (std::size_t k = 0; k < row.size; ++k) {
      if (row.cols[k] != i) {
        builder.add_transition(i, row.cols[k], row.values[k] * factor);
      }
    }
  }
  return builder.build();
}

markov::Ctmc with_transition_zeroed(const markov::Ctmc& chain,
                                    markov::StateIndex from,
                                    markov::StateIndex to) {
  if (chain.generator().at(from, to) == 0.0) {
    throw SolveError(SolveCause::kInvalidInput, "with_transition_zeroed",
                     "transition " + std::to_string(from) + " -> " +
                         std::to_string(to) + " does not exist");
  }
  markov::CtmcBuilder builder;
  for (const auto& s : chain.states()) builder.add_state(s.name, s.reward);
  const auto& q = chain.generator();
  for (markov::StateIndex i = 0; i < chain.size(); ++i) {
    const auto row = q.row(i);
    for (std::size_t k = 0; k < row.size; ++k) {
      if (row.cols[k] == i) continue;
      if (i == from && row.cols[k] == to) continue;
      builder.add_transition(i, row.cols[k], row.values[k]);
    }
  }
  return builder.build();
}

markov::Ctmc ill_conditioned_chain(std::size_t pairs, double spread) {
  if (pairs == 0 || !(spread > 0.0)) {
    throw SolveError(SolveCause::kInvalidInput, "ill_conditioned_chain",
                     "need pairs >= 1 and spread > 0");
  }
  markov::CtmcBuilder builder;
  const std::size_t n = 2 * pairs + 1;
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_state("s" + std::to_string(i), i % 2 == 0 ? 1.0 : 0.0);
  }
  // Birth-death chain with alternating stiffness direction: even links push
  // forward at rate `spread` against a rate-1 return, odd links the
  // reverse. Detailed balance makes the stationary masses oscillate across
  // a dynamic range of `spread`, the uniformization constant is ~spread
  // while the slowest transitions have rate 1 (so power iteration needs
  // O(spread) steps), and the replaced-row direct system's conditioning
  // degrades with `spread`.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i % 2 == 0) {
      builder.add_transition(i, i + 1, spread);
      builder.add_transition(i + 1, i, 1.0);
    } else {
      builder.add_transition(i, i + 1, 1.0);
      builder.add_transition(i + 1, i, spread);
    }
  }
  return builder.build();
}

}  // namespace rascad::resilience
