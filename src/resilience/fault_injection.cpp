#include "resilience/fault_injection.hpp"

#include <chrono>
#include <limits>
#include <string>
#include <thread>

namespace rascad::resilience {

void corrupt_result(linalg::Vector& pi, FaultKind kind) {
  if (pi.empty()) return;
  switch (kind) {
    case FaultKind::kNanResult:
      pi[pi.size() / 2] = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::kNegativeResult:
      pi[pi.size() / 2] -= 0.5;  // far beyond any clamp tolerance
      break;
    case FaultKind::kNone:
    case FaultKind::kThrowSingular:
    case FaultKind::kThrowNonConverged:
    case FaultKind::kThrowTransient:
    case FaultKind::kTimeout:
    case FaultKind::kStall:
      break;
  }
}

namespace {

/// kTimeout: burn wall-clock until the attempt's token stops, so the
/// injected slowness is proportional to the configured budget. Polling in
/// 0.2 ms naps keeps cancellation latency small while the cap bounds
/// plans that carry no deadline at all.
void burn_until_stopped(const robust::CancelToken& token, double cap_ms) {
  const auto start = std::chrono::steady_clock::now();
  const auto cap = std::chrono::duration<double, std::milli>(cap_ms);
  while (!token.stop_requested() &&
         std::chrono::steady_clock::now() - start < cap) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace

void apply_fault(const FaultPlan& plan, Rung rung, linalg::Vector& pi,
                 const robust::CancelToken& token) {
  switch (plan.take_fault(rung)) {
    case FaultKind::kNone:
      return;
    case FaultKind::kThrowSingular:
      throw SolveError(SolveCause::kSingular, to_string(rung),
                       "injected singular-system failure");
    case FaultKind::kThrowNonConverged:
      throw SolveError(SolveCause::kNonConverged, to_string(rung),
                       "injected convergence failure");
    case FaultKind::kThrowTransient:
      throw SolveError(SolveCause::kTransient, to_string(rung),
                       "injected transient failure");
    case FaultKind::kNanResult:
      corrupt_result(pi, FaultKind::kNanResult);
      return;
    case FaultKind::kNegativeResult:
      corrupt_result(pi, FaultKind::kNegativeResult);
      return;
    case FaultKind::kTimeout:
      burn_until_stopped(token, plan.timeout_cap_ms);
      throw SolveError(SolveCause::kDeadlineExceeded, to_string(rung),
                       "injected timeout");
    case FaultKind::kStall:
      // Deliberately ignores the token: models a solve stuck inside a
      // kernel with no checkpoint. The result stays intact, so once the
      // stall ends the rung still succeeds — only the watchdog notices.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan.stall_ms));
      return;
  }
}

markov::Ctmc with_scaled_rates(const markov::Ctmc& chain, double factor) {
  if (!(factor > 0.0)) {
    throw SolveError(SolveCause::kInvalidInput, "with_scaled_rates",
                     "scale factor must be positive");
  }
  markov::CtmcBuilder builder;
  for (const auto& s : chain.states()) builder.add_state(s.name, s.reward);
  const auto& q = chain.generator();
  for (markov::StateIndex i = 0; i < chain.size(); ++i) {
    const auto row = q.row(i);
    for (std::size_t k = 0; k < row.size; ++k) {
      if (row.cols[k] != i) {
        builder.add_transition(i, row.cols[k], row.values[k] * factor);
      }
    }
  }
  return builder.build();
}

markov::Ctmc with_transition_zeroed(const markov::Ctmc& chain,
                                    markov::StateIndex from,
                                    markov::StateIndex to) {
  if (chain.generator().at(from, to) == 0.0) {
    throw SolveError(SolveCause::kInvalidInput, "with_transition_zeroed",
                     "transition " + std::to_string(from) + " -> " +
                         std::to_string(to) + " does not exist");
  }
  markov::CtmcBuilder builder;
  for (const auto& s : chain.states()) builder.add_state(s.name, s.reward);
  const auto& q = chain.generator();
  for (markov::StateIndex i = 0; i < chain.size(); ++i) {
    const auto row = q.row(i);
    for (std::size_t k = 0; k < row.size; ++k) {
      if (row.cols[k] == i) continue;
      if (i == from && row.cols[k] == to) continue;
      builder.add_transition(i, row.cols[k], row.values[k]);
    }
  }
  return builder.build();
}

markov::Ctmc ill_conditioned_chain(std::size_t pairs, double spread) {
  if (pairs == 0 || !(spread > 0.0)) {
    throw SolveError(SolveCause::kInvalidInput, "ill_conditioned_chain",
                     "need pairs >= 1 and spread > 0");
  }
  markov::CtmcBuilder builder;
  const std::size_t n = 2 * pairs + 1;
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_state("s" + std::to_string(i), i % 2 == 0 ? 1.0 : 0.0);
  }
  // Birth-death chain with alternating stiffness direction: even links push
  // forward at rate `spread` against a rate-1 return, odd links the
  // reverse. Detailed balance makes the stationary masses oscillate across
  // a dynamic range of `spread`, the uniformization constant is ~spread
  // while the slowest transitions have rate 1 (so power iteration needs
  // O(spread) steps), and the replaced-row direct system's conditioning
  // degrades with `spread`.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i % 2 == 0) {
      builder.add_transition(i, i + 1, spread);
      builder.add_transition(i + 1, i, 1.0);
    } else {
      builder.add_transition(i, i + 1, 1.0);
      builder.add_transition(i + 1, i, spread);
    }
  }
  return builder.build();
}

}  // namespace rascad::resilience
