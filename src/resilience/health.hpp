// Numerical health verification for solver outputs.
//
// Every ladder rung's result passes through these checks before it is
// accepted: a NaN/Inf scan, negative-probability clamping with tolerance
// accounting, and a residual re-check computed independently of whatever
// metric the solver itself reported. The direct rung additionally gets a
// cheap 1-norm condition estimate (Hager/Higham) from its LU factors, so
// silently inaccurate solves on ill-conditioned systems are caught instead
// of propagated into availability numbers.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "linalg/dense.hpp"
#include "linalg/lu.hpp"
#include "markov/ctmc.hpp"
#include "resilience/solve_error.hpp"

namespace rascad::resilience {

struct HealthCheckConfig {
  /// Largest total negative probability mass clamped to zero without
  /// failing the check. Mass beyond this indicates a wrong answer, not
  /// round-off.
  double clamp_tolerance = 1e-9;
  /// The independent residual re-check accepts
  /// ||pi Q||_inf <= residual_factor * tolerance * max(1, max exit rate);
  /// the rate scaling keeps the bound meaningful for stiff chains whose
  /// generator entries span many orders of magnitude.
  double residual_factor = 1e4;
  /// Direct-path conditioning threshold: a 1-norm condition estimate above
  /// this fails the rung with kBadConditioning.
  double max_condition = 1e14;
};

/// Outcome of verifying one candidate stationary vector.
struct HealthReport {
  bool ok = true;
  std::optional<SolveCause> failure;  // set when !ok
  std::string detail;
  double clamped_mass = 0.0;   // negative mass clamped (absolute value)
  double residual_inf = 0.0;   // independently recomputed ||pi Q||_inf
  double residual_l1 = 0.0;    // independently recomputed ||pi Q||_1
};

/// True iff every entry is finite.
bool all_finite(const linalg::Vector& v) noexcept;

/// Distribution-only verification (no generator residual): NaN/Inf scan,
/// clamp-and-account of negative entries, renormalization in place. Used
/// by the DTMC/SMP/transient paths whose residual metric differs from
/// ||pi Q||.
HealthReport check_distribution(linalg::Vector& pi,
                                const HealthCheckConfig& config);

/// Verifies (and repairs, where legitimate) a candidate stationary vector:
/// NaN/Inf scan, clamp-and-account of negative entries, renormalization,
/// then a residual re-check of ||pi Q|| in two norms. `pi` is modified in
/// place (clamping + renormalization) only when the checks pass far enough
/// to make that meaningful.
HealthReport check_stationary(const markov::Ctmc& chain, linalg::Vector& pi,
                              const HealthCheckConfig& config,
                              double tolerance);

/// 1-norm of a dense matrix (max absolute column sum).
double dense_norm_1(const linalg::DenseMatrix& a);

/// Hager/Higham estimate of cond_1(A) = ||A||_1 * ||A^{-1}||_1 using the
/// already-computed LU factors (a handful of solves, O(n^2) each — cheap
/// next to the O(n^3) factorization it piggybacks on). `a_norm_1` is the
/// 1-norm of the original matrix.
double condition_estimate_1(const linalg::LuFactorization& lu,
                            double a_norm_1);

}  // namespace rascad::resilience
