#include "resilience/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "markov/absorbing.hpp"
#include "markov/ode.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/gth.hpp"
#include "robust/robust.hpp"
#include "robust/watchdog.hpp"

namespace rascad::resilience {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Stationarity residual ||pi Q||_inf (the solver-independent metric).
double stationarity_residual(const markov::Ctmc& chain,
                             const linalg::Vector& pi) {
  return linalg::norm_inf(chain.generator().mul_transpose(pi));
}

/// Classifies an escape from a rung into a (cause, message) pair.
std::pair<SolveCause, std::string> classify(const std::exception& e) {
  if (const auto* se = dynamic_cast<const SolveError*>(&e)) {
    return {se->cause(), se->what()};
  }
  return {SolveCause::kInvalidInput, e.what()};
}

/// Deterministic jitter factor in [0.5, 1.5) from (seed, rung, retry) via
/// a splitmix-style hash — reproducible backoff schedules for tests.
double jitter_factor(std::uint64_t seed, Rung rung, std::size_t retry) {
  std::uint64_t h = seed;
  h ^= (static_cast<std::uint64_t>(rung) + 1) * 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<std::uint64_t>(retry) + 1) * 0xbf58476d1ce4e5b9ull;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return 0.5 + static_cast<double>(h % 1024) / 1024.0;
}

/// The episode-wide stop token: request cancellation (config.cancel) plus
/// the episode deadline, realized as a deadline child so the deadline is
/// also observed *inside* rungs at solver checkpoints. Invalid when the
/// config asks for neither — the healthy path stays token-free.
robust::CancelToken episode_token(const ResilienceConfig& config) {
  if (config.deadline_ms > 0.0) {
    return config.cancel.valid()
               ? robust::CancelToken::child_of(config.cancel,
                                               config.deadline_ms)
               : robust::CancelToken::with_deadline_ms(config.deadline_ms);
  }
  return config.cancel;
}

/// Token one rung attempt runs under: fans the episode token out with the
/// optional per-rung budget. A stopped *attempt* token whose episode is
/// still live means only the rung budget fired — that attempt fails with
/// kDeadlineExceeded and the ladder escalates as for any other failure.
robust::CancelToken attempt_token_for(const robust::CancelToken& episode,
                                      const ResilienceConfig& config) {
  if (config.rung_deadline_ms > 0.0) {
    return robust::CancelToken::child_of(episode, config.rung_deadline_ms);
  }
  return episode;
}

/// Shared ladder driver: runs `attempt_rung` over config.rungs, applying
/// deadline checks, fault injection hooks and trace bookkeeping. The rung
/// callback fills in the attempt's solver fields and returns the candidate
/// result; `verify` post-processes/checks it (returning failure info via
/// HealthReport). Throws SolveError when every rung fails.
template <typename Result, typename AttemptFn, typename VerifyFn>
Result run_ladder(const std::vector<Rung>& rungs,
                  const ResilienceConfig& config, const char* episode_name,
                  SolveTrace& trace, AttemptFn&& attempt_rung,
                  VerifyFn&& verify) {
  obs::Span episode_span("ladder.episode");
  if (episode_span.active()) episode_span.set_detail(episode_name);
  const auto start = Clock::now();
  if (rungs.empty()) {
    throw SolveError(SolveCause::kInvalidInput, episode_name,
                     "no rungs configured");
  }
  // Episode-wide stop state: request token + episode deadline. Invalid on
  // the healthy path, where every token check below short-circuits.
  const robust::CancelToken episode = episode_token(config);
  robust::StallWatchdog::Guard stall_guard;
  if (episode.valid() && config.stall_budget_ms > 0.0) {
    stall_guard = robust::StallWatchdog::global().watch(
        episode, config.stall_budget_ms, episode_name);
  }
  // Per-rung durations come from one clock read at the end of each rung
  // (elapsed-so-far differences), keeping the healthy path at two clock
  // reads total.
  double elapsed_ms = 0.0;
  for (Rung rung : rungs) {
    if (episode.valid() && episode.stop_requested()) {
      trace.total_ms = ms_since(start);
      robust::record_stop(episode, episode_name);
      throw SolveError(robust::cause_from(episode.reason()), episode_name,
                       std::string("episode stopped (") +
                           robust::to_string(episode.reason()) + ") after " +
                           trace.summary());
    }
    bool escalate = false;
    for (std::size_t retry = 0; !escalate; ++retry) {
      RungAttempt attempt;
      attempt.rung = rung;
      const double rung_start_ms = elapsed_ms;
      obs::Span attempt_span("ladder.attempt");
      // Each attempt runs under a child of the episode token carrying the
      // optional per-rung budget; a stopped attempt token whose episode is
      // still live is an ordinary rung failure and escalates.
      const robust::CancelToken attempt_token =
          attempt_token_for(episode, config);
      try {
        Result candidate = attempt_rung(rung, attempt, attempt_token);
        apply_fault(config.fault_plan, rung, candidate.pi, attempt_token);
        const HealthReport health = verify(rung, candidate, attempt);
        attempt.clamped_mass = health.clamped_mass;
        attempt.residual_check = health.residual_inf;
        if (!health.ok) {
          obs::emit_event("health.check_failed",
                          {{"episode", episode_name},
                           {"rung", to_string(rung)},
                           {"detail", health.detail}});
          throw SolveError(health.failure.value_or(SolveCause::kNanOrInf),
                           to_string(rung), health.detail,
                           attempt.iterations, attempt.residual);
        }
        attempt.success = true;
        elapsed_ms = ms_since(start);
        attempt.duration_ms = elapsed_ms - rung_start_ms;
        trace.attempts.push_back(attempt);
        trace.success = true;
        trace.final_rung = rung;
        trace.total_ms = elapsed_ms;
        if (obs::enabled()) {
          if (attempt_span.active()) {
            attempt_span.set_detail(std::string(to_string(rung)) + " ok");
          }
          static obs::Counter& attempts_total =
              obs::Registry::global().counter("ladder.attempts");
          static obs::Counter& escalations =
              obs::Registry::global().counter("ladder.escalations");
          static obs::Histogram& attempt_ms =
              obs::Registry::global().histogram("ladder.attempt_ms");
          attempts_total.inc();
          escalations.inc(trace.attempts.size() - 1);
          attempt_ms.observe_ms(attempt.duration_ms);
        }
        return candidate;
      } catch (const std::exception& e) {
        const auto [cause, message] = classify(e);
        attempt.success = false;
        attempt.cause = cause;
        attempt.message = message;
        elapsed_ms = ms_since(start);
        attempt.duration_ms = elapsed_ms - rung_start_ms;
        trace.attempts.push_back(attempt);
        if (obs::enabled()) {
          if (attempt_span.active()) {
            attempt_span.set_detail(std::string(to_string(rung)) +
                                    " failed (" + to_string(cause) + ")");
          }
          static obs::Counter& attempts_total =
              obs::Registry::global().counter("ladder.attempts");
          static obs::Counter& failures =
              obs::Registry::global().counter("ladder.attempt_failures");
          static obs::Histogram& attempt_ms =
              obs::Registry::global().histogram("ladder.attempt_ms");
          attempts_total.inc();
          failures.inc();
          attempt_ms.observe_ms(attempt.duration_ms);
          obs::emit_event("ladder.attempt_failed",
                          {{"episode", episode_name},
                           {"rung", to_string(rung)},
                           {"cause", to_string(cause)},
                           {"message", message}});
        }
        if ((cause == SolveCause::kCancelled ||
             cause == SolveCause::kDeadlineExceeded) &&
            episode.valid() && episode.stop_requested()) {
          // The *episode* stopped, not just a rung budget: no further rung
          // can be admitted, abort terminally.
          trace.total_ms = elapsed_ms;
          robust::record_stop(episode, episode_name);
          throw SolveError(robust::cause_from(episode.reason()),
                           episode_name, "episode stopped: " +
                                             trace.summary());
        }
        if (cause == SolveCause::kTransient &&
            retry < config.transient_retries) {
          // Same-rung retry after deterministic jittered exponential
          // backoff: base * 2^retry * jitter[0.5, 1.5).
          const double backoff =
              config.retry_backoff_ms *
              static_cast<double>(1ull << std::min<std::size_t>(retry, 20)) *
              jitter_factor(config.retry_jitter_seed, rung, retry);
          if (backoff > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff));
          }
          continue;
        }
        escalate = true;  // next rung
      }
    }
  }
  trace.total_ms = ms_since(start);
  const SolveCause last_cause = trace.attempts.back().cause;
  throw SolveError(last_cause, episode_name,
                   "all rungs failed: " + trace.summary());
}

/// Candidate carried through the ladder: a distribution plus solver stats.
struct Candidate {
  linalg::Vector pi;
  std::size_t iterations = 0;
  double residual = 0.0;
};

/// ||A||_1 of the replaced-row system, computed off the sparse generator
/// in O(nnz): column j of A = (Q^T with a ones row) holds Q(j, i) for
/// i < n-1 plus the 1 contributed by the normalization row.
double replaced_row_norm_1(const markov::Ctmc& chain) {
  const linalg::CsrMatrix& q = chain.generator();
  const std::size_t n = chain.size();
  double best = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double col = 1.0;
    const auto row = q.row(j);
    for (std::size_t k = 0; k < row.size; ++k) {
      if (row.cols[k] != n - 1) col += std::abs(row.values[k]);
    }
    best = std::max(best, col);
  }
  return best;
}

/// The direct rung, re-implemented from the markov layer so the LU factors
/// can feed the condition estimate (markov::solve_steady_state discards
/// them). Fails with kBadConditioning when the estimate crosses the
/// configured threshold — a silently inaccurate answer is treated exactly
/// like an error.
Candidate direct_rung(const markov::Ctmc& chain,
                      const ResilienceConfig& config, RungAttempt& attempt) {
  const std::size_t n = chain.size();
  linalg::DenseMatrix a = chain.generator().transposed().to_dense();
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  const linalg::LuFactorization lu(std::move(a));
  linalg::Vector b(n, 0.0);
  b[n - 1] = 1.0;
  Candidate candidate;
  candidate.pi = lu.solve(b);
  // Two-tier conditioning check. The pivot-ratio scan is O(n) and free on
  // the healthy path; the Hager estimate costs a handful of O(n^2)
  // triangular solves and runs only when the scan puts the factors within
  // reach of the threshold (the ratio underestimates cond_1, hence the
  // four-orders-of-magnitude margin).
  const auto [pivot_min, pivot_max] = lu.pivot_extremes();
  double estimate = pivot_min > 0.0
                        ? pivot_max / pivot_min
                        : std::numeric_limits<double>::infinity();
  if (estimate > config.health.max_condition * 1e-4) {
    estimate = condition_estimate_1(lu, replaced_row_norm_1(chain));
  }
  attempt.condition_estimate = estimate;
  if (estimate > config.health.max_condition) {
    std::ostringstream os;
    os << "condition estimate " << estimate << " exceeds threshold "
       << config.health.max_condition;
    throw SolveError(SolveCause::kBadConditioning, "direct", os.str());
  }
  return candidate;
}

Candidate iterative_rung(const markov::Ctmc& chain, Rung rung,
                         const ResilienceConfig& config,
                         const robust::CancelToken& token) {
  markov::SteadyStateOptions opts = config.base;
  opts.cancel = token;
  opts.cancel_check_interval = config.cancel_check_interval;
  switch (rung) {
    case Rung::kBiCgStab:
      opts.method = markov::SteadyStateMethod::kBiCgStab;
      break;
    case Rung::kSor:
      opts.method = markov::SteadyStateMethod::kSor;
      break;
    case Rung::kPower:
      opts.method = markov::SteadyStateMethod::kPower;
      break;
    default:
      throw SolveError(SolveCause::kInvalidInput, "ladder",
                       "rung has no steady-state meaning");
  }
  const markov::SteadyStateResult r = markov::solve_steady_state(chain, opts);
  return {r.pi, r.iterations, r.residual};
}

std::vector<Rung> filter_rungs(const std::vector<Rung>& rungs,
                               std::initializer_list<Rung> allowed) {
  std::vector<Rung> out;
  for (Rung r : rungs) {
    if (std::find(allowed.begin(), allowed.end(), r) != allowed.end()) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace

ResilienceConfig config_from(const markov::SteadyStateOptions& opts) {
  ResilienceConfig config;
  config.base = opts;
  Rung first = Rung::kDirect;
  switch (opts.method) {
    case markov::SteadyStateMethod::kDirect: first = Rung::kDirect; break;
    case markov::SteadyStateMethod::kSor: first = Rung::kSor; break;
    case markov::SteadyStateMethod::kPower: first = Rung::kPower; break;
    case markov::SteadyStateMethod::kBiCgStab: first = Rung::kBiCgStab; break;
  }
  std::vector<Rung> rungs = {first};
  for (Rung r : ResilienceConfig{}.rungs) {
    if (r != first) rungs.push_back(r);
  }
  config.rungs = std::move(rungs);
  return config;
}

std::string SolveTrace::summary() const {
  std::ostringstream os;
  if (source != SolveSource::kFresh) {
    os << '[' << to_string(source) << "] ";
  }
  bool first = true;
  for (const auto& a : attempts) {
    if (!first) os << " -> ";
    first = false;
    os << to_string(a.rung);
    if (a.success) {
      os << " ok";
    } else {
      os << " failed (" << to_string(a.cause) << ")";
    }
  }
  os << " [" << attempts.size() << (attempts.size() == 1 ? " attempt, "
                                                         : " attempts, ");
  os.precision(3);
  os << total_ms << " ms]";
  return os.str();
}

ResilientResult solve_steady_state_resilient(const markov::Ctmc& chain,
                                             const ResilienceConfig& config) {
  ResilientResult out;
  if (chain.size() > config.max_states) {
    throw SolveError(SolveCause::kBudgetExceeded,
                     "solve_steady_state_resilient",
                     "chain has " + std::to_string(chain.size()) +
                         " states, budget is " +
                         std::to_string(config.max_states));
  }
  if (chain.size() == 1) {
    out.result.pi = {1.0};
    out.trace.success = true;
    out.trace.final_rung = config.rungs.empty() ? Rung::kDirect
                                                : config.rungs.front();
    RungAttempt trivial;
    trivial.rung = out.trace.final_rung;
    trivial.success = true;
    out.trace.attempts.push_back(trivial);
    return out;
  }

  const std::vector<Rung> rungs =
      filter_rungs(config.rungs, {Rung::kDirect, Rung::kBiCgStab, Rung::kSor,
                                  Rung::kPower, Rung::kGth});
  const Candidate solved = run_ladder<Candidate>(
      rungs, config, "solve_steady_state_resilient", out.trace,
      [&](Rung rung, RungAttempt& attempt,
          const robust::CancelToken& token) -> Candidate {
        switch (rung) {
          case Rung::kDirect:
            return direct_rung(chain, config, attempt);
          case Rung::kGth:
            return {gth_stationary(chain), 0, 0.0};
          default:
            return iterative_rung(chain, rung, config, token);
        }
      },
      [&](Rung, Candidate& candidate, RungAttempt& attempt) -> HealthReport {
        attempt.iterations = candidate.iterations;
        attempt.residual = candidate.residual;
        return check_stationary(chain, candidate.pi, config.health,
                                config.base.tolerance);
      });
  out.result.pi = std::move(solved.pi);
  out.result.iterations = solved.iterations;
  out.result.residual = stationarity_residual(chain, out.result.pi);
  return out;
}

std::vector<std::optional<ResilientResult>> solve_steady_state_resilient_batched(
    const std::vector<const markov::Ctmc*>& chains,
    const ResilienceConfig& config) {
  std::vector<std::optional<ResilientResult>> out(chains.size());
  if (chains.empty() || config.rungs.empty()) return out;
  const Rung first = config.rungs.front();
  if (first != Rung::kSor && first != Rung::kBiCgStab) {
    return out;  // only iterative first rungs batch; all lanes fall back
  }

  obs::Span episode_span("ladder.batch_episode");
  const auto start = Clock::now();
  std::vector<const markov::Ctmc*> eligible(chains.size(), nullptr);
  std::size_t eligible_count = 0;
  for (std::size_t j = 0; j < chains.size(); ++j) {
    const markov::Ctmc* chain = chains[j];
    // Size-1 and over-budget chains take the individual path, which owns
    // the trivial trace / kBudgetExceeded throw.
    if (chain == nullptr || chain->size() < 2 ||
        chain->size() > config.max_states) {
      continue;
    }
    eligible[j] = chain;
    ++eligible_count;
  }
  if (eligible_count == 0) return out;

  markov::SteadyStateOptions opts = config.base;
  opts.method = first == Rung::kSor ? markov::SteadyStateMethod::kSor
                                    : markov::SteadyStateMethod::kBiCgStab;
  // The batched stage runs as one rung attempt under the episode token
  // (plus the per-rung budget); a stop mid-batch raises SolveError out of
  // this entry, exactly as the scalar ladder's terminal abort would.
  opts.cancel = attempt_token_for(episode_token(config), config);
  opts.cancel_check_interval = config.cancel_check_interval;
  std::vector<std::optional<markov::SteadyStateResult>> solved =
      markov::solve_steady_state_batched(eligible, opts);

  const double batch_ms = ms_since(start);
  const double per_lane_ms =
      batch_ms / static_cast<double>(eligible_count);
  if (episode_span.active()) {
    episode_span.set_detail(std::string(to_string(first)) + " x" +
                            std::to_string(eligible_count));
  }

  for (std::size_t j = 0; j < chains.size(); ++j) {
    if (!solved[j]) continue;
    const markov::Ctmc& chain = *chains[j];
    ResilientResult rr;
    rr.result = std::move(*solved[j]);
    RungAttempt attempt;
    attempt.rung = first;
    attempt.iterations = rr.result.iterations;
    attempt.residual = rr.result.residual;
    attempt.duration_ms = per_lane_ms;
    if (config.fault_plan.fault_for(first) != FaultKind::kNone) {
      // A fault is scheduled on the batched rung: hand the lane to the
      // scalar ladder, which injects it (consuming budget) exactly as a
      // non-batched solve would — same faults per lane in the same lane
      // order, rather than a batch-only approximation that would charge
      // the budget twice (once here, once in the fallback).
      continue;
    }
    const HealthReport health = check_stationary(
        chain, rr.result.pi, config.health, config.base.tolerance);
    if (!health.ok) continue;  // fall back to the full ladder
    attempt.clamped_mass = health.clamped_mass;
    attempt.residual_check = health.residual_inf;
    attempt.success = true;
    rr.result.residual = stationarity_residual(chain, rr.result.pi);
    rr.trace.attempts.push_back(std::move(attempt));
    rr.trace.success = true;
    rr.trace.final_rung = first;
    rr.trace.total_ms = per_lane_ms;
    out[j] = std::move(rr);
  }
  return out;
}

ResilientResult stationary_resilient(const markov::Dtmc& dtmc,
                                     const ResilienceConfig& config) {
  ResilientResult out;
  if (dtmc.size() > config.max_states) {
    throw SolveError(SolveCause::kBudgetExceeded, "stationary_resilient",
                     "chain has " + std::to_string(dtmc.size()) +
                         " states, budget is " +
                         std::to_string(config.max_states));
  }
  std::vector<Rung> rungs =
      filter_rungs(config.rungs, {Rung::kDirect, Rung::kPower, Rung::kGth});
  if (rungs.empty()) rungs = {Rung::kDirect, Rung::kPower, Rung::kGth};
  const Candidate solved = run_ladder<Candidate>(
      rungs, config, "stationary_resilient", out.trace,
      [&](Rung rung, RungAttempt&, const robust::CancelToken&) -> Candidate {
        switch (rung) {
          case Rung::kDirect:
            return {dtmc.stationary(/*direct=*/true), 0, 0.0};
          case Rung::kGth:
            return {gth_stationary(dtmc), 0, 0.0};
          default:
            return {dtmc.stationary(/*direct=*/false), 0, 0.0};
        }
      },
      [&](Rung, Candidate& candidate, RungAttempt& attempt) -> HealthReport {
        HealthReport report = check_distribution(candidate.pi, config.health);
        if (!report.ok) return report;
        // Independent fixed-point residual ||pi P - pi||_inf; P is
        // row-stochastic so no rate scaling is needed.
        linalg::Vector r =
            dtmc.transition_matrix().mul_transpose(candidate.pi);
        for (std::size_t i = 0; i < r.size(); ++i) r[i] -= candidate.pi[i];
        report.residual_inf = linalg::norm_inf(r);
        report.residual_l1 = linalg::norm1(r);
        attempt.residual = report.residual_inf;
        const double bound =
            config.health.residual_factor * config.base.tolerance;
        if (!(report.residual_inf <= bound)) {
          report.ok = false;
          report.failure = SolveCause::kNonConverged;
          std::ostringstream os;
          os << "independent residual " << report.residual_inf
             << " exceeds bound " << bound;
          report.detail = os.str();
        }
        return report;
      });
  out.result.pi = std::move(solved.pi);
  return out;
}

ResilientResult smp_steady_state_resilient(
    const semimarkov::SemiMarkovProcess& process,
    const ResilienceConfig& config) {
  for (std::size_t i = 0; i < process.size(); ++i) {
    if (process.is_absorbing(i)) {
      throw SolveError(SolveCause::kInvalidInput,
                       "smp_steady_state_resilient",
                       "process has absorbing states; steady state is not "
                       "defined");
    }
  }
  ResilientResult out = stationary_resilient(process.embedded(), config);
  linalg::Vector& pi = out.result.pi;
  for (std::size_t i = 0; i < process.size(); ++i) {
    pi[i] *= process.mean_sojourn(i);
  }
  const HealthReport report = check_distribution(pi, config.health);
  if (!report.ok) {
    obs::emit_event("health.check_failed",
                    {{"episode", "smp_steady_state_resilient"},
                     {"detail", report.detail}});
    throw SolveError(report.failure.value_or(SolveCause::kNanOrInf),
                     "smp_steady_state_resilient", report.detail);
  }
  return out;
}

ResilientTransientResult transient_distribution_resilient(
    const markov::Ctmc& chain, const linalg::Vector& pi0, double t,
    const markov::TransientOptions& opts, const ResilienceConfig& config) {
  ResilientTransientResult out;
  if (chain.size() > config.max_states) {
    throw SolveError(SolveCause::kBudgetExceeded,
                     "transient_distribution_resilient",
                     "chain has " + std::to_string(chain.size()) +
                         " states, budget is " +
                         std::to_string(config.max_states));
  }
  std::vector<Rung> rungs = filter_rungs(
      config.rungs,
      {Rung::kUniformization, Rung::kUniformizationRelaxed, Rung::kOde});
  if (rungs.empty()) {
    rungs = {Rung::kUniformization, Rung::kUniformizationRelaxed, Rung::kOde};
  }
  const Candidate solved = run_ladder<Candidate>(
      rungs, config, "transient_distribution_resilient", out.trace,
      [&](Rung rung, RungAttempt& attempt,
          const robust::CancelToken&) -> Candidate {
        switch (rung) {
          case Rung::kUniformization:
            return {markov::transient_distribution(chain, pi0, t, opts), 0,
                    0.0};
          case Rung::kUniformizationRelaxed: {
            // Loosen the truncation tolerance and raise the term budget:
            // a slightly coarser answer beats no answer.
            markov::TransientOptions relaxed = opts;
            relaxed.tolerance = std::max(opts.tolerance * 1e3, 1e-9);
            relaxed.max_terms = opts.max_terms * 8;
            return {markov::transient_distribution(chain, pi0, t, relaxed),
                    0, 0.0};
          }
          default: {
            markov::OdeOptions ode;
            const markov::OdeResult r =
                markov::transient_distribution_ode(chain, pi0, t, ode);
            attempt.iterations = r.steps;
            return {r.distribution, r.steps, 0.0};
          }
        }
      },
      [&](Rung, Candidate& candidate, RungAttempt&) -> HealthReport {
        return check_distribution(candidate.pi, config.health);
      });
  out.distribution = std::move(solved.pi);
  return out;
}

double mttf_resilient(const markov::Ctmc& chain, markov::StateIndex initial,
                      const ResilienceConfig& config, SolveTrace* trace) {
  if (chain.down_states().empty()) return 0.0;
  const markov::Ctmc rel = markov::make_down_states_absorbing(chain);

  // Transient states of the reliability chain and their local indices.
  std::vector<markov::StateIndex> transient;
  std::vector<std::ptrdiff_t> pos(rel.size(), -1);
  for (markov::StateIndex i = 0; i < rel.size(); ++i) {
    if (rel.exit_rate(i) > 0.0) {
      pos[i] = static_cast<std::ptrdiff_t>(transient.size());
      transient.push_back(i);
    }
  }
  if (transient.empty() || pos[initial] < 0) return 0.0;
  const std::size_t m = transient.size();

  // (-Q_TT) tau = 1, assembled once in sparse form (densified on demand by
  // the direct rung).
  linalg::CsrBuilder builder(m, m);
  for (std::size_t r = 0; r < m; ++r) {
    const auto row = rel.generator().row(transient[r]);
    for (std::size_t k = 0; k < row.size; ++k) {
      const std::ptrdiff_t c = pos[row.cols[k]];
      if (c >= 0) builder.add(r, static_cast<std::size_t>(c),
                              -row.values[k]);
    }
  }
  const linalg::CsrMatrix a = builder.build();
  const linalg::Vector ones(m, 1.0);

  std::vector<Rung> rungs = filter_rungs(
      config.rungs, {Rung::kDirect, Rung::kBiCgStab, Rung::kSor});
  if (rungs.empty()) rungs = {Rung::kDirect, Rung::kBiCgStab, Rung::kSor};
  SolveTrace local_trace;
  SolveTrace& tr = trace ? *trace : local_trace;
  const Candidate solved = run_ladder<Candidate>(
      rungs, config, "mttf_resilient", tr,
      [&](Rung rung, RungAttempt& attempt,
          const robust::CancelToken& token) -> Candidate {
        switch (rung) {
          case Rung::kDirect: {
            linalg::DenseMatrix dense = a.to_dense();
            const double a_norm_1 = dense_norm_1(dense);
            const linalg::LuFactorization lu(std::move(dense));
            Candidate candidate{lu.solve(ones), 0, 0.0};
            attempt.condition_estimate = condition_estimate_1(lu, a_norm_1);
            if (attempt.condition_estimate > config.health.max_condition) {
              std::ostringstream os;
              os << "condition estimate " << attempt.condition_estimate
                 << " exceeds threshold " << config.health.max_condition;
              throw SolveError(SolveCause::kBadConditioning, "direct",
                               os.str());
            }
            return candidate;
          }
          case Rung::kBiCgStab: {
            linalg::IterativeOptions iopts;
            iopts.tolerance = config.base.tolerance;
            iopts.max_iterations = config.base.max_iterations;
            iopts.cancel = token;
            iopts.cancel_check_interval = config.cancel_check_interval;
            const linalg::IterativeResult r =
                linalg::bicgstab_solve(a, ones, iopts);
            if (!r.converged) {
              throw SolveError(SolveCause::kNonConverged, "bicgstab",
                               "did not converge", r.iterations, r.residual);
            }
            return {r.solution, r.iterations, r.residual};
          }
          default: {
            linalg::IterativeOptions iopts;
            iopts.tolerance = config.base.tolerance;
            iopts.max_iterations = config.base.max_iterations;
            iopts.relaxation = config.base.relaxation;
            iopts.cancel = token;
            iopts.cancel_check_interval = config.cancel_check_interval;
            const linalg::IterativeResult r = linalg::sor_solve(a, ones, iopts);
            if (!r.converged) {
              throw SolveError(SolveCause::kNonConverged, "sor",
                               "did not converge", r.iterations, r.residual);
            }
            return {r.solution, r.iterations, r.residual};
          }
        }
      },
      [&](Rung, Candidate& candidate, RungAttempt& attempt) -> HealthReport {
        attempt.iterations = candidate.iterations;
        attempt.residual = candidate.residual;
        HealthReport report;
        if (!all_finite(candidate.pi)) {
          report.ok = false;
          report.failure = SolveCause::kNanOrInf;
          report.detail = "non-finite mean times to absorption";
          return report;
        }
        for (double x : candidate.pi) {
          if (x < 0.0) {
            report.ok = false;
            report.failure = SolveCause::kNanOrInf;
            report.detail = "negative mean time to absorption";
            return report;
          }
        }
        // Independent residual: ||A tau - 1||_inf against the rate scale.
        linalg::Vector r = a.mul(candidate.pi);
        for (double& x : r) x -= 1.0;
        report.residual_inf = linalg::norm_inf(r);
        attempt.residual_check = report.residual_inf;
        const double scale =
            std::max(1.0, rel.generator().max_abs_diagonal());
        const double bound =
            config.health.residual_factor * config.base.tolerance * scale;
        if (!(report.residual_inf <= bound)) {
          report.ok = false;
          report.failure = SolveCause::kNonConverged;
          std::ostringstream os;
          os << "independent residual " << report.residual_inf
             << " exceeds bound " << bound;
          report.detail = os.str();
        }
        return report;
      });
  return solved.pi[static_cast<std::size_t>(pos[initial])];
}

}  // namespace rascad::resilience
