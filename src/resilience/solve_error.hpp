// Structured solver-failure taxonomy shared by every numerical entry point.
//
// RAScad's contract is that a non-expert always gets availability numbers
// back, so the analysis stack must fail in a machine-readable way that the
// resilience ladder (resilience.hpp) can act on. SolveError replaces the
// bare std::runtime_error / std::domain_error throws of the numeric layers:
// it is-a std::runtime_error (existing catch sites keep working) but carries
// a cause code, the method that failed, and the iteration/residual state at
// failure.
//
// This header is deliberately header-only and dependency-free so the low
// layers (linalg, markov, semimarkov) can throw it without linking against
// the resilience library, which sits above them.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace rascad::resilience {

/// Why a solve failed. The ladder records these in SolveTrace and uses them
/// to decide whether escalating to the next rung can help.
enum class SolveCause {
  kSingular,          // singular / pivot-breakdown linear system
  kNonConverged,      // iteration budget exhausted before the tolerance
  kNanOrInf,          // non-finite values or invalid probability mass
  kBudgetExceeded,    // state-space / term / step budget exceeded
  kBadConditioning,   // condition estimate above the configured threshold
  kDeadlineExceeded,  // deadline token expired (request or rung budget)
  kInvalidInput,      // structurally unusable input (e.g. absorbing state
                      // handed to an irreducible-chain solver)
  kCancelled,         // cooperative cancel token observed mid-solve
  kTransient,         // transient fault worth retrying on the same rung
};

inline const char* to_string(SolveCause cause) {
  switch (cause) {
    case SolveCause::kSingular: return "singular";
    case SolveCause::kNonConverged: return "non-converged";
    case SolveCause::kNanOrInf: return "nan-or-inf";
    case SolveCause::kBudgetExceeded: return "budget-exceeded";
    case SolveCause::kBadConditioning: return "bad-conditioning";
    case SolveCause::kDeadlineExceeded: return "deadline-exceeded";
    case SolveCause::kInvalidInput: return "invalid-input";
    case SolveCause::kCancelled: return "cancelled";
    case SolveCause::kTransient: return "transient";
  }
  return "unknown";
}

/// Identity of a solver rung across the resilience ladders. The
/// steady-state ladder uses the first five; the transient ladder uses the
/// uniformization/ODE rungs.
enum class Rung {
  kDirect,     // dense LU on the replaced-row system
  kBiCgStab,   // preconditioned Krylov solve
  kSor,        // Gauss-Seidel / SOR sweeps
  kPower,      // power iteration on the uniformized DTMC
  kGth,        // Grassmann-Taksar-Heyman elimination (subtraction-free)
  kUniformization,         // Jensen's method, strict tolerance
  kUniformizationRelaxed,  // Jensen's method, relaxed truncation budget
  kOde,        // adaptive RKF45 integration
};

inline const char* to_string(Rung rung) {
  switch (rung) {
    case Rung::kDirect: return "direct";
    case Rung::kBiCgStab: return "bicgstab";
    case Rung::kSor: return "sor";
    case Rung::kPower: return "power";
    case Rung::kGth: return "gth";
    case Rung::kUniformization: return "uniformization";
    case Rung::kUniformizationRelaxed: return "uniformization-relaxed";
    case Rung::kOde: return "ode";
  }
  return "unknown";
}

/// Structured solver failure: cause code + failing method + diagnostics.
class SolveError : public std::runtime_error {
 public:
  SolveError(SolveCause cause, std::string method, const std::string& message,
             std::size_t iterations = 0, double residual = 0.0)
      : std::runtime_error(method + ": " + message +
                           " [cause=" + to_string(cause) + "]"),
        cause_(cause),
        method_(std::move(method)),
        iterations_(iterations),
        residual_(residual) {}

  SolveCause cause() const noexcept { return cause_; }
  const std::string& method() const noexcept { return method_; }
  std::size_t iterations() const noexcept { return iterations_; }
  double residual() const noexcept { return residual_; }

 private:
  SolveCause cause_;
  std::string method_;
  std::size_t iterations_;
  double residual_;
};

}  // namespace rascad::resilience
