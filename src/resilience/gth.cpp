#include "resilience/gth.hpp"

#include <cmath>
#include <string>

#include "resilience/solve_error.hpp"

namespace rascad::resilience {

namespace {

linalg::DenseMatrix off_diagonal_weights(const linalg::CsrMatrix& m) {
  const std::size_t n = m.rows();
  linalg::DenseMatrix w(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = m.row(r);
    for (std::size_t k = 0; k < row.size; ++k) {
      if (row.cols[k] != r) w(r, row.cols[k]) = row.values[k];
    }
  }
  return w;
}

}  // namespace

linalg::Vector gth_stationary_dense(linalg::DenseMatrix w) {
  const std::size_t n = w.rows();
  if (n == 0) {
    throw SolveError(SolveCause::kInvalidInput, "gth_stationary",
                     "empty chain");
  }
  if (n == 1) return {1.0};

  // Forward elimination of states n-1 .. 1 (state 0 is kept). Eliminating
  // state m censors the chain to the surviving states: the new weight from
  // i to j is w(i, j) + w(i, m) * w(m, j) / out(m), where out(m) is m's
  // total outflow to the survivors. The division is folded into column m
  // (w(i, m) /= out) so the back-substitution identity
  //   pi(m) = sum_{i < m} pi(i) * w(i, m)
  // holds directly. Only additions of non-negative terms occur, which is
  // the whole point of GTH.
  for (std::size_t m = n - 1; m >= 1; --m) {
    double out = 0.0;
    for (std::size_t j = 0; j < m; ++j) out += w(m, j);
    if (!(out > 0.0) || !std::isfinite(out)) {
      throw SolveError(
          SolveCause::kInvalidInput, "gth_stationary",
          "state " + std::to_string(m) +
              " has no outflow to surviving states (reducible chain)");
    }
    for (std::size_t i = 0; i < m; ++i) w(i, m) /= out;
    for (std::size_t i = 0; i < m; ++i) {
      const double into_m = w(i, m);
      if (into_m == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) {
        if (j != i) w(i, j) += into_m * w(m, j);
      }
    }
  }

  // Back-substitution: unnormalized pi[0] = 1, each later state's mass is
  // the inflow-weighted sum over already-computed states.
  linalg::Vector pi(n, 0.0);
  pi[0] = 1.0;
  double total = 1.0;
  for (std::size_t m = 1; m < n; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += pi[i] * w(i, m);
    pi[m] = acc;
    total += acc;
  }
  for (double& x : pi) x /= total;
  return pi;
}

linalg::Vector gth_stationary(const markov::Ctmc& chain) {
  return gth_stationary_dense(off_diagonal_weights(chain.generator()));
}

linalg::Vector gth_stationary(const markov::Dtmc& dtmc) {
  return gth_stationary_dense(off_diagonal_weights(dtmc.transition_matrix()));
}

}  // namespace rascad::resilience
