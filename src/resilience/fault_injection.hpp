// Deterministic fault injection for the resilience ladder.
//
// Two families of faults, both fully deterministic so tests are exactly
// reproducible:
//
//  * Result faults (FaultPlan): the ladder consults the plan after each
//    rung and either throws a structured SolveError in the rung's name or
//    corrupts the rung's output (NaN seeding, negative mass) *before* the
//    health checks run. This is how the test suite proves that every
//    rung-to-rung transition actually fires and that the health layer, not
//    just the solvers' own error paths, catches bad answers.
//
//  * Generator perturbations: rebuild a chain with scaled rates, a zeroed
//    transition, or an extreme stiffness spread. These produce *genuinely*
//    sick inputs (near-singular systems, reducible chains, non-converging
//    iterations) rather than simulated failures.
#pragma once

#include <cstddef>
#include <map>

#include "markov/ctmc.hpp"
#include "resilience/solve_error.hpp"

namespace rascad::resilience {

/// What to do to a rung's attempt.
enum class FaultKind {
  kNone,
  kThrowSingular,      // throw SolveError(kSingular) in the rung's name
  kThrowNonConverged,  // throw SolveError(kNonConverged)
  kNanResult,          // overwrite one entry of the result with NaN
  kNegativeResult,     // subtract a large negative mass from one entry
};

/// Per-rung fault schedule. Empty (the default) injects nothing and costs
/// one map lookup per rung on the solve path.
struct FaultPlan {
  std::map<Rung, FaultKind> faults;

  bool active() const noexcept { return !faults.empty(); }
  FaultKind fault_for(Rung rung) const {
    const auto it = faults.find(rung);
    return it == faults.end() ? FaultKind::kNone : it->second;
  }

  FaultPlan& fail(Rung rung, FaultKind kind) {
    faults[rung] = kind;
    return *this;
  }
};

/// Applies a result fault to a candidate vector (kNanResult /
/// kNegativeResult); throw-kind faults are raised by the ladder itself.
void corrupt_result(linalg::Vector& pi, FaultKind kind);

/// Copy of `chain` with every transition rate multiplied by `factor`
/// (> 0). Scaling is availability-neutral in exact arithmetic but drives
/// the replaced-row direct system toward singularity as factor -> 0.
markov::Ctmc with_scaled_rates(const markov::Ctmc& chain, double factor);

/// Copy of `chain` with the (from, to) transition removed. Zeroing the only
/// exit of a state produces an absorbing state — reducible-chain input for
/// the irreducible-only solvers. Throws SolveError(kInvalidInput) if the
/// transition does not exist.
markov::Ctmc with_transition_zeroed(const markov::Ctmc& chain,
                                    markov::StateIndex from,
                                    markov::StateIndex to);

/// A stiff birth-death availability chain of 2 * `pairs` + 1 states whose
/// adjacent rates alternate between 1 and `spread` (e.g. 1e12): its
/// uniformized DTMC mixes at rate ~1/spread, so power iteration and SOR
/// need O(spread) sweeps while direct elimination and GTH solve it exactly.
markov::Ctmc ill_conditioned_chain(std::size_t pairs, double spread);

}  // namespace rascad::resilience
