// Deterministic fault injection for the resilience ladder.
//
// Two families of faults, both fully deterministic so tests are exactly
// reproducible:
//
//  * Result faults (FaultPlan): the ladder consults the plan after each
//    rung and either throws a structured SolveError in the rung's name or
//    corrupts the rung's output (NaN seeding, negative mass) *before* the
//    health checks run. This is how the test suite proves that every
//    rung-to-rung transition actually fires and that the health layer, not
//    just the solvers' own error paths, catches bad answers.
//
//  * Generator perturbations: rebuild a chain with scaled rates, a zeroed
//    transition, or an extreme stiffness spread. These produce *genuinely*
//    sick inputs (near-singular systems, reducible chains, non-converging
//    iterations) rather than simulated failures.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>

#include "markov/ctmc.hpp"
#include "resilience/solve_error.hpp"
#include "robust/cancel.hpp"

namespace rascad::resilience {

/// What to do to a rung's attempt.
enum class FaultKind {
  kNone,
  kThrowSingular,      // throw SolveError(kSingular) in the rung's name
  kThrowNonConverged,  // throw SolveError(kNonConverged)
  kNanResult,          // overwrite one entry of the result with NaN
  kNegativeResult,     // subtract a large negative mass from one entry
  kThrowTransient,     // throw SolveError(kTransient): the ladder retries
                       // the same rung (with backoff) instead of escalating
  kTimeout,            // burn wall-clock until the attempt's token stops
                       // (capped by timeout_cap_ms), then throw
                       // kDeadlineExceeded — simulates a solve that blows
                       // its rung budget
  kStall,              // sleep stall_ms while *ignoring* the token, then
                       // return the result intact — a solve that never
                       // reaches a checkpoint; watchdog fodder
};

/// Per-rung fault schedule. Empty (the default) injects nothing and costs
/// one map lookup per rung on the solve path. Each entry optionally
/// carries a consumable budget: fail_times(rung, kind, n) injects at most
/// n times, after which the rung behaves healthily — that is what lets a
/// transient-retry loop eventually succeed. The budget is shared state, so
/// copies of a plan (per-lane configs, per-thread configs) draw from one
/// count.
struct FaultPlan {
  struct Entry {
    FaultKind kind = FaultKind::kNone;
    /// Remaining injections; null = unlimited.
    std::shared_ptr<std::atomic<long long>> budget;
    /// Budget as configured (-1 = unlimited); stable input for cache
    /// signatures while `budget` counts down.
    long long initial = -1;
  };

  std::map<Rung, Entry> faults;
  /// kStall sleep duration.
  double stall_ms = 25.0;
  /// kTimeout sleeps until the attempt token stops, but never longer than
  /// this (so a plan without any deadline still terminates).
  double timeout_cap_ms = 50.0;

  bool active() const noexcept { return !faults.empty(); }

  /// Non-consuming peek: the fault that would fire for `rung` now.
  FaultKind fault_for(Rung rung) const {
    const auto it = faults.find(rung);
    if (it == faults.end()) return FaultKind::kNone;
    const Entry& entry = it->second;
    if (entry.budget &&
        entry.budget->load(std::memory_order_relaxed) <= 0) {
      return FaultKind::kNone;
    }
    return entry.kind;
  }

  /// Consumes one budget unit and returns the fault to inject, or kNone
  /// when the rung is unscheduled or its budget is spent.
  FaultKind take_fault(Rung rung) const {
    const auto it = faults.find(rung);
    if (it == faults.end()) return FaultKind::kNone;
    const Entry& entry = it->second;
    if (entry.budget) {
      if (entry.budget->fetch_sub(1, std::memory_order_acq_rel) <= 0) {
        return FaultKind::kNone;
      }
    }
    return entry.kind;
  }

  /// Schedules `kind` on every attempt of `rung` (unlimited budget).
  FaultPlan& fail(Rung rung, FaultKind kind) {
    faults[rung] = Entry{kind, nullptr, -1};
    return *this;
  }

  /// Schedules `kind` on the first `times` attempts of `rung`.
  FaultPlan& fail_times(Rung rung, FaultKind kind, long long times) {
    faults[rung] = Entry{
        kind, std::make_shared<std::atomic<long long>>(times), times};
    return *this;
  }
};

/// Applies a result fault to a candidate vector (kNanResult /
/// kNegativeResult); throw-kind faults are raised by the ladder itself.
void corrupt_result(linalg::Vector& pi, FaultKind kind);

/// Consumes and applies `plan`'s fault for `rung` against an
/// already-computed result `pi`. Throw kinds raise SolveError in the
/// rung's name; corrupt kinds poison `pi` (the health checks must catch
/// it); kTimeout spins on `token` until it stops (capped by
/// timeout_cap_ms) and throws kDeadlineExceeded; kStall sleeps stall_ms
/// ignoring `token` and returns with `pi` intact.
void apply_fault(const FaultPlan& plan, Rung rung, linalg::Vector& pi,
                 const robust::CancelToken& token = {});

/// Copy of `chain` with every transition rate multiplied by `factor`
/// (> 0). Scaling is availability-neutral in exact arithmetic but drives
/// the replaced-row direct system toward singularity as factor -> 0.
markov::Ctmc with_scaled_rates(const markov::Ctmc& chain, double factor);

/// Copy of `chain` with the (from, to) transition removed. Zeroing the only
/// exit of a state produces an absorbing state — reducible-chain input for
/// the irreducible-only solvers. Throws SolveError(kInvalidInput) if the
/// transition does not exist.
markov::Ctmc with_transition_zeroed(const markov::Ctmc& chain,
                                    markov::StateIndex from,
                                    markov::StateIndex to);

/// A stiff birth-death availability chain of 2 * `pairs` + 1 states whose
/// adjacent rates alternate between 1 and `spread` (e.g. 1e12): its
/// uniformized DTMC mixes at rate ~1/spread, so power iteration and SOR
/// need O(spread) sweeps while direct elimination and GTH solve it exactly.
markov::Ctmc ill_conditioned_chain(std::size_t pairs, double spread);

}  // namespace rascad::resilience
