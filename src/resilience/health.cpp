#include "resilience/health.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace rascad::resilience {

bool all_finite(const linalg::Vector& v) noexcept {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

HealthReport check_distribution(linalg::Vector& pi,
                                const HealthCheckConfig& config) {
  HealthReport report;
  if (!all_finite(pi)) {
    report.ok = false;
    report.failure = SolveCause::kNanOrInf;
    report.detail = "non-finite entries in probability vector";
    return report;
  }

  // Clamp negative entries, accounting for how much mass was discarded.
  double negative_mass = 0.0;
  for (double& x : pi) {
    if (x < 0.0) {
      negative_mass -= x;
      x = 0.0;
    }
  }
  report.clamped_mass = negative_mass;
  if (negative_mass > config.clamp_tolerance) {
    report.ok = false;
    report.failure = SolveCause::kNanOrInf;
    std::ostringstream os;
    os << "negative probability mass " << negative_mass
       << " exceeds clamp tolerance " << config.clamp_tolerance;
    report.detail = os.str();
    return report;
  }
  const double total = linalg::sum(pi);
  if (!(total > 0.0) || !std::isfinite(total)) {
    report.ok = false;
    report.failure = SolveCause::kNanOrInf;
    report.detail = "probability vector has no positive mass";
    return report;
  }
  linalg::scale(pi, 1.0 / total);
  return report;
}

HealthReport check_stationary(const markov::Ctmc& chain, linalg::Vector& pi,
                              const HealthCheckConfig& config,
                              double tolerance) {
  if (pi.size() != chain.size()) {
    HealthReport report;
    report.ok = false;
    report.failure = SolveCause::kInvalidInput;
    report.detail = "stationary vector size mismatch";
    return report;
  }
  HealthReport report = check_distribution(pi, config);
  if (!report.ok) return report;

  // Independent residual re-check: recompute pi Q from the generator and
  // measure it in both the infinity and 1 norms, regardless of whatever
  // convergence metric the solver used internally.
  const linalg::Vector r = chain.generator().mul_transpose(pi);
  report.residual_inf = linalg::norm_inf(r);
  report.residual_l1 = linalg::norm1(r);
  const double scale = std::max(1.0, chain.generator().max_abs_diagonal());
  const double bound = config.residual_factor * tolerance * scale;
  if (!(report.residual_inf <= bound)) {
    report.ok = false;
    report.failure = SolveCause::kNonConverged;
    std::ostringstream os;
    os << "independent residual " << report.residual_inf
       << " exceeds bound " << bound;
    report.detail = os.str();
    return report;
  }
  return report;
}

double dense_norm_1(const linalg::DenseMatrix& a) {
  // Row-major traversal with per-column accumulators (a column-by-column
  // walk strides the whole matrix and thrashes the cache).
  std::vector<double> col_sums(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      col_sums[c] += std::abs(a(r, c));
    }
  }
  double best = 0.0;
  for (const double s : col_sums) best = std::max(best, s);
  return best;
}

double condition_estimate_1(const linalg::LuFactorization& lu,
                            double a_norm_1) {
  // Hager's algorithm: maximize ||A^{-1} x||_1 over ||x||_1 = 1 by a few
  // steps of a subgradient ascent that alternates solves with A and A^T.
  const std::size_t n = lu.size();
  if (n == 0) return 0.0;
  linalg::Vector x(n, 1.0 / static_cast<double>(n));
  double estimate = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    const linalg::Vector y = lu.solve(x);
    const double y_norm = linalg::norm1(y);
    if (!std::isfinite(y_norm)) {
      return std::numeric_limits<double>::infinity();
    }
    estimate = std::max(estimate, y_norm);
    // xi = sign(y)
    linalg::Vector xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    const linalg::Vector z = lu.solve_transpose(xi);
    // Next ascent direction: the unit vector of the largest |z| component.
    std::size_t j = 0;
    double z_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(z[i]) > z_max) {
        z_max = std::abs(z[i]);
        j = i;
      }
    }
    // Converged when no component beats the current functional value.
    if (z_max <= std::abs(linalg::dot(z, x))) break;
    std::fill(x.begin(), x.end(), 0.0);
    x[j] = 1.0;
  }
  return estimate * a_norm_1;
}

}  // namespace rascad::resilience
