// Abstract syntax of the RAScad engineering-language model specification.
//
// The paper's MG GUI builds a tree of diagrams and blocks with the
// parameter list of Section 3; this library accepts the same information as
// a text file (`.rsc`). All durations are normalized at parse time: hours
// for the long time scales, and the FIT unit (failures per 1e9 hours) for
// transient fault rates, exactly as the paper's parameter list specifies.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rascad::spec {

/// Global parameters (paper Section 3, Global Parameter Bar).
struct GlobalParams {
  double reboot_time_h = 8.0 / 60.0;  // Tboot
  double mttm_h = 48.0;               // service restriction time
  double mttrfid_h = 4.0;             // repair from incorrect diagnosis
  double mission_time_h = 8760.0;     // horizon for interval measures

  bool operator==(const GlobalParams&) const = default;
};

enum class Transparency {
  kTransparent,
  kNontransparent,
};

/// Redundancy architecture. kSymmetric is the paper's implemented case
/// (all redundant components functionally equivalent); kPrimaryStandby is
/// the paper's announced work-in-progress, implemented here as an
/// extension.
enum class RedundancyMode {
  kSymmetric,
  kPrimaryStandby,
};

/// One MG block — a component type with its full parameter list.
struct BlockSpec {
  std::string name;
  std::string part_number;
  std::string description;

  unsigned quantity = 1;      // N
  unsigned min_quantity = 1;  // K

  double mtbf_h = 0.0;         // permanent-fault MTBF; 0 => no permanent faults
  double transient_fit = 0.0;  // transient failure rate in FIT

  // MTTR parts 1-3 (minutes in the GUI; stored in minutes here too).
  double mttr_diagnosis_min = 0.0;
  double mttr_corrective_min = 0.0;
  double mttr_verification_min = 0.0;

  double service_response_h = 0.0;     // Tresp
  double p_correct_diagnosis = 1.0;    // Pcd

  // Redundancy-only parameters (meaningful when quantity > min_quantity).
  double p_latent_fault = 0.0;         // Plf
  double mttdlf_h = 0.0;               // mean time to detect latent fault
  Transparency recovery = Transparency::kNontransparent;
  double ar_time_min = 0.0;            // AR/failover downtime if nontransparent
  double p_spf = 0.0;                  // Pspf
  double t_spf_min = 0.0;              // Tspf
  Transparency repair = Transparency::kNontransparent;
  double reintegration_min = 0.0;      // downtime if repair nontransparent

  // Extension: primary/standby clusters.
  RedundancyMode mode = RedundancyMode::kSymmetric;
  double failover_time_min = 0.0;      // used when mode == kPrimaryStandby
  double p_failover = 1.0;             // probability failover succeeds

  /// Name of the subdiagram modeling this block's internals, if any.
  std::optional<std::string> subdiagram;

  double mttr_total_h() const {
    return (mttr_diagnosis_min + mttr_corrective_min +
            mttr_verification_min) / 60.0;
  }
  bool redundant() const { return quantity > min_quantity; }
  bool has_own_failures() const { return mtbf_h > 0.0 || transient_fit > 0.0; }

  /// Field-wise equality (doubles compared exactly): used as a cheap
  /// "provably unchanged" pre-check before the canonical chain signature.
  bool operator==(const BlockSpec&) const = default;
};

/// One MG diagram: a named serial composition of blocks.
struct DiagramSpec {
  std::string name;
  std::vector<BlockSpec> blocks;
};

/// A complete model: globals plus the diagram tree. The first diagram is
/// the root (level 1 in the paper's numbering).
struct ModelSpec {
  std::string title;
  GlobalParams globals;
  std::vector<DiagramSpec> diagrams;

  const DiagramSpec* find_diagram(const std::string& name) const {
    for (const auto& d : diagrams) {
      if (d.name == name) return &d;
    }
    return nullptr;
  }

  /// Looks up a block by (diagram, block) name; nullptr when absent. The
  /// const overload allows existence probes without copying the spec.
  const BlockSpec* find_block(const std::string& diagram,
                              const std::string& block) const {
    for (const auto& d : diagrams) {
      if (d.name != diagram) continue;
      for (const auto& b : d.blocks) {
        if (b.name == block) return &b;
      }
    }
    return nullptr;
  }
  BlockSpec* find_block(const std::string& diagram, const std::string& block) {
    return const_cast<BlockSpec*>(
        std::as_const(*this).find_block(diagram, block));
  }

  const DiagramSpec& root() const { return diagrams.front(); }
};

}  // namespace rascad::spec
