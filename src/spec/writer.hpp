// Canonical serialization of a ModelSpec back to `.rsc` text — the file
// sharing / documentation half of the tool (models are saved, shared, and
// re-opened across the network in RAScad).
#pragma once

#include <iosfwd>
#include <string>

#include "spec/ast.hpp"

namespace rascad::spec {

/// Writes the model in canonical `.rsc` form. Parsing the output yields an
/// equivalent ModelSpec (round-trip property, covered by tests).
void write_model(std::ostream& os, const ModelSpec& model);

std::string to_rsc_string(const ModelSpec& model);

}  // namespace rascad::spec
