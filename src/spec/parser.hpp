// Recursive-descent parser for the `.rsc` model-specification language.
//
// Grammar (comma/semicolon are interchangeable optional separators):
//
//   model    := ['title' '=' STRING] [globals] diagram+
//   globals  := 'globals' '{' (IDENT '=' number-with-unit)* '}'
//   diagram  := 'diagram' STRING '{' block* '}'
//   block    := 'block' STRING '{' param* '}'
//   param    := IDENT '=' (NUMBER [unit] | STRING | IDENT)
//
// Durations accept units h/hr/hours, min/minutes, s/sec/seconds, d/days,
// y/years; transient rates accept `fit` (failures per 1e9 h) or `per_hour`.
// Unitless durations default to the parameter's native unit from the
// paper's GUI (hours for MTBF-class parameters, minutes for MTTR-class).
#pragma once

#include <string>
#include <string_view>

#include "spec/ast.hpp"
#include "spec/lexer.hpp"

namespace rascad::spec {

/// Parses a model from source text. Throws ParseError with a line/column
/// tag on any lexical, syntactic, or immediate semantic problem (unknown
/// parameter, bad unit). Structural validation (dangling subdiagram
/// references etc.) is a separate pass — see validate.hpp.
ModelSpec parse_model(std::string_view source);

/// Convenience: read and parse a file. Throws std::runtime_error if the
/// file cannot be read, ParseError on bad content.
ModelSpec parse_model_file(const std::string& path);

}  // namespace rascad::spec
