// Tokenizer for the `.rsc` model-specification language.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rascad::spec {

enum class TokenKind {
  kIdentifier,  // globals, diagram, block, quantity, transparent, ...
  kString,      // "Server Box"
  kNumber,      // 3, 0.98, 1e5
  kLBrace,
  kRBrace,
  kEquals,
  kSemicolon,
  kEndOfInput,
};

struct Token {
  TokenKind kind;
  std::string text;    // identifier/string content, or the raw number text
  double number = 0.0; // valid when kind == kNumber
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Raised for both lexical and syntactic errors; carries a position-tagged
/// message ("line 12: ...").
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, std::size_t column, const std::string& message);
  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Tokenizes the whole input. `#` and `//` start line comments. Throws
/// ParseError on malformed input (unterminated string, bad number, stray
/// character). The result always ends with a kEndOfInput token.
std::vector<Token> tokenize(std::string_view source);

}  // namespace rascad::spec
