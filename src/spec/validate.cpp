#include "spec/validate.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace rascad::spec {

namespace {

class Checker {
 public:
  explicit Checker(const ModelSpec& model) : model_(model) {}

  ValidationReport run() {
    check_globals();
    check_diagram_names();
    for (const auto& d : model_.diagrams) {
      check_diagram(d);
    }
    check_tree_structure();
    return std::move(report_);
  }

 private:
  void error(const std::string& where, const std::string& message) {
    report_.issues.push_back(
        {ValidationIssue::Severity::kError, where, message});
  }
  void warning(const std::string& where, const std::string& message) {
    report_.issues.push_back(
        {ValidationIssue::Severity::kWarning, where, message});
  }

  static std::string block_where(const DiagramSpec& d, const BlockSpec& b) {
    return "diagram '" + d.name + "' / block '" + b.name + "'";
  }

  void check_globals() {
    const GlobalParams& g = model_.globals;
    if (g.mission_time_h <= 0.0) {
      error("globals", "mission_time must be positive");
    }
    bool any_transient = false;
    bool any_imperfect_diag = false;
    for (const auto& d : model_.diagrams) {
      for (const auto& b : d.blocks) {
        any_transient = any_transient || b.transient_fit > 0.0;
        any_imperfect_diag =
            any_imperfect_diag || (b.has_own_failures() &&
                                   b.p_correct_diagnosis < 1.0);
      }
    }
    if (any_transient && g.reboot_time_h <= 0.0) {
      error("globals",
            "reboot_time must be positive when any block has transient "
            "faults");
    }
    if (any_imperfect_diag && g.mttrfid_h <= 0.0) {
      error("globals",
            "mttrfid must be positive when any block has "
            "p_correct_diagnosis < 1");
    }
  }

  void check_diagram_names() {
    std::unordered_set<std::string> seen;
    for (const auto& d : model_.diagrams) {
      if (d.name.empty()) error("model", "diagram with empty name");
      if (!seen.insert(d.name).second) {
        error("model", "duplicate diagram name '" + d.name + "'");
      }
    }
  }

  void check_diagram(const DiagramSpec& d) {
    if (d.blocks.empty()) {
      error("diagram '" + d.name + "'", "diagram has no blocks");
    }
    std::unordered_set<std::string> block_names;
    for (const auto& b : d.blocks) {
      if (!block_names.insert(b.name).second) {
        error("diagram '" + d.name + "'",
              "duplicate block name '" + b.name + "'");
      }
      check_block(d, b);
    }
  }

  void check_block(const DiagramSpec& d, const BlockSpec& b) {
    const std::string where = block_where(d, b);
    if (b.quantity == 0) error(where, "quantity must be >= 1");
    if (b.min_quantity == 0) error(where, "min_quantity must be >= 1");
    if (b.min_quantity > b.quantity) {
      error(where, "min_quantity exceeds quantity");
    }
    if (!b.has_own_failures() && !b.subdiagram) {
      error(where,
            "block has neither failure parameters (mtbf/transient_rate) nor "
            "a subdiagram");
    }
    if (b.mtbf_h > 0.0 &&
        b.mttr_total_h() + b.service_response_h <= 0.0) {
      error(where,
            "permanent faults require a repair path: MTTR parts and/or "
            "service_response must be positive");
    }
    if (b.subdiagram && !model_.find_diagram(*b.subdiagram)) {
      error(where, "subdiagram '" + *b.subdiagram + "' does not exist");
    }

    const bool redundant = b.redundant();
    if (redundant) {
      if (b.p_latent_fault > 0.0 && b.mttdlf_h <= 0.0) {
        error(where, "p_latent_fault > 0 requires positive mttdlf");
      }
      if (b.recovery == Transparency::kNontransparent &&
          b.mode == RedundancyMode::kSymmetric && b.ar_time_min <= 0.0 &&
          b.mtbf_h > 0.0) {
        error(where, "nontransparent recovery requires positive ar_time");
      }
      if (b.p_spf > 0.0 && b.t_spf_min <= 0.0) {
        error(where, "p_spf > 0 requires positive t_spf");
      }
      if (b.repair == Transparency::kNontransparent &&
          b.reintegration_min <= 0.0 && b.mtbf_h > 0.0) {
        error(where,
              "nontransparent repair requires positive reintegration_time");
      }
    } else {
      // Redundancy-only parameters on a non-redundant block are ignored by
      // the generator; surface that to the modeler.
      if (b.p_latent_fault > 0.0 || b.p_spf > 0.0 ||
          b.ar_time_min > 0.0 || b.reintegration_min > 0.0) {
        warning(where,
                "redundancy parameters are ignored because quantity == "
                "min_quantity");
      }
    }

    if (b.mode == RedundancyMode::kPrimaryStandby) {
      if (b.quantity != 2 || b.min_quantity != 1) {
        error(where,
              "primary_standby mode requires quantity = 2 and "
              "min_quantity = 1");
      }
      if (b.failover_time_min <= 0.0 && b.p_failover < 1.0) {
        error(where,
              "primary_standby with imperfect failover requires positive "
              "failover_time");
      }
    }
  }

  void check_tree_structure() {
    if (model_.diagrams.empty()) return;
    // Count references and detect cycles by DFS from the root.
    std::unordered_map<std::string, int> ref_count;
    for (const auto& d : model_.diagrams) {
      for (const auto& b : d.blocks) {
        if (b.subdiagram) ++ref_count[*b.subdiagram];
      }
    }
    const std::string& root = model_.diagrams.front().name;
    if (ref_count.count(root)) {
      error("model", "root diagram '" + root + "' is used as a subdiagram");
    }
    for (const auto& [name, count] : ref_count) {
      if (count > 1) {
        error("model", "diagram '" + name + "' is referenced " +
                           std::to_string(count) +
                           " times; the diagram/block model must be a tree");
      }
    }
    // Cycle detection / reachability.
    std::unordered_set<std::string> visiting;
    std::unordered_set<std::string> done;
    bool cycle_reported = false;
    std::function<void(const DiagramSpec&)> dfs = [&](const DiagramSpec& d) {
      if (done.count(d.name)) return;
      if (!visiting.insert(d.name).second) return;
      for (const auto& b : d.blocks) {
        if (!b.subdiagram) continue;
        const DiagramSpec* sub = model_.find_diagram(*b.subdiagram);
        if (!sub) continue;  // already reported
        if (visiting.count(sub->name)) {
          if (!cycle_reported) {
            error("model", "subdiagram cycle involving '" + sub->name + "'");
            cycle_reported = true;
          }
          continue;
        }
        dfs(*sub);
      }
      visiting.erase(d.name);
      done.insert(d.name);
    };
    dfs(model_.diagrams.front());
    for (const auto& d : model_.diagrams) {
      if (!done.count(d.name) && d.name != root) {
        warning("model", "diagram '" + d.name +
                             "' is not reachable from the root diagram");
      }
    }
  }

  const ModelSpec& model_;
  ValidationReport report_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const auto& i : issues) {
    os << (i.severity == ValidationIssue::Severity::kError ? "error"
                                                           : "warning")
       << " [" << i.where << "]: " << i.message << '\n';
  }
  return os.str();
}

ValidationReport validate(const ModelSpec& model) {
  return Checker(model).run();
}

void validate_or_throw(const ModelSpec& model) {
  const ValidationReport report = validate(model);
  if (!report.ok()) {
    throw std::invalid_argument("model validation failed:\n" +
                                report.to_string());
  }
}

}  // namespace rascad::spec
