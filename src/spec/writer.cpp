#include "spec/writer.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace rascad::spec {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write_number(std::ostream& os, const char* key, double value,
                  const char* unit) {
  os << "  " << key << " = " << std::setprecision(15) << value;
  if (unit && *unit) os << ' ' << unit;
  os << '\n';
}

void write_block(std::ostream& os, const BlockSpec& b) {
  os << " block " << quoted(b.name) << " {\n";
  auto field = [&os](const char* key, double value, const char* unit) {
    os << ' ';
    write_number(os, key, value, unit);
  };
  if (!b.part_number.empty()) {
    os << "   part_number = " << quoted(b.part_number) << '\n';
  }
  if (!b.description.empty()) {
    os << "   description = " << quoted(b.description) << '\n';
  }
  field("quantity", b.quantity, "");
  field("min_quantity", b.min_quantity, "");
  if (b.mtbf_h > 0.0) field("mtbf", b.mtbf_h, "h");
  if (b.transient_fit > 0.0) field("transient_rate", b.transient_fit, "fit");
  if (b.mttr_diagnosis_min > 0.0) {
    field("mttr_diagnosis", b.mttr_diagnosis_min, "min");
  }
  if (b.mttr_corrective_min > 0.0) {
    field("mttr_corrective", b.mttr_corrective_min, "min");
  }
  if (b.mttr_verification_min > 0.0) {
    field("mttr_verification", b.mttr_verification_min, "min");
  }
  if (b.service_response_h > 0.0) {
    field("service_response", b.service_response_h, "h");
  }
  if (b.p_correct_diagnosis < 1.0) {
    field("p_correct_diagnosis", b.p_correct_diagnosis, "");
  }
  if (b.redundant()) {
    if (b.p_latent_fault > 0.0) field("p_latent_fault", b.p_latent_fault, "");
    if (b.mttdlf_h > 0.0) field("mttdlf", b.mttdlf_h, "h");
    os << "   recovery = "
       << (b.recovery == Transparency::kTransparent ? "transparent"
                                                    : "nontransparent")
       << '\n';
    if (b.ar_time_min > 0.0) field("ar_time", b.ar_time_min, "min");
    if (b.p_spf > 0.0) field("p_spf", b.p_spf, "");
    if (b.t_spf_min > 0.0) field("t_spf", b.t_spf_min, "min");
    os << "   repair = "
       << (b.repair == Transparency::kTransparent ? "transparent"
                                                  : "nontransparent")
       << '\n';
    if (b.reintegration_min > 0.0) {
      field("reintegration_time", b.reintegration_min, "min");
    }
  }
  if (b.mode == RedundancyMode::kPrimaryStandby) {
    os << "   mode = primary_standby\n";
    if (b.failover_time_min > 0.0) {
      field("failover_time", b.failover_time_min, "min");
    }
    if (b.p_failover < 1.0) field("p_failover", b.p_failover, "");
  }
  if (b.subdiagram) {
    os << "   subdiagram = " << quoted(*b.subdiagram) << '\n';
  }
  os << " }\n";
}

}  // namespace

void write_model(std::ostream& os, const ModelSpec& model) {
  if (!model.title.empty()) {
    os << "title = " << quoted(model.title) << "\n\n";
  }
  os << "globals {\n";
  write_number(os, "reboot_time", model.globals.reboot_time_h, "h");
  write_number(os, "mttm", model.globals.mttm_h, "h");
  write_number(os, "mttrfid", model.globals.mttrfid_h, "h");
  write_number(os, "mission_time", model.globals.mission_time_h, "h");
  os << "}\n";
  for (const auto& d : model.diagrams) {
    os << "\ndiagram " << quoted(d.name) << " {\n";
    for (const auto& b : d.blocks) write_block(os, b);
    os << "}\n";
  }
}

std::string to_rsc_string(const ModelSpec& model) {
  std::ostringstream os;
  write_model(os, model);
  return os.str();
}

}  // namespace rascad::spec
