// Structural and semantic validation of a parsed model, separate from the
// parser so programmatically built ModelSpecs get the same checking.
#pragma once

#include <string>
#include <vector>

#include "spec/ast.hpp"

namespace rascad::spec {

struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity;
  std::string where;    // "diagram 'X' / block 'Y'"
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const {
    for (const auto& i : issues) {
      if (i.severity == ValidationIssue::Severity::kError) return false;
    }
    return true;
  }
  std::size_t error_count() const {
    std::size_t n = 0;
    for (const auto& i : issues) {
      if (i.severity == ValidationIssue::Severity::kError) ++n;
    }
    return n;
  }
  std::string to_string() const;
};

/// Checks parameter consistency (quantities, probabilities vs. their
/// supporting durations, redundancy-only parameters) and diagram-tree
/// structure (subdiagram references resolve, form a tree, no cycles).
ValidationReport validate(const ModelSpec& model);

/// Throws std::invalid_argument carrying the full report if there is any
/// error-severity issue.
void validate_or_throw(const ModelSpec& model);

}  // namespace rascad::spec
