#include "spec/lexer.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace rascad::spec {

namespace {

bool is_identifier_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_number_start(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
         c == '+';
}

}  // namespace

ParseError::ParseError(std::size_t line, std::size_t column,
                       const std::string& message)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << "line " << line << ", column " << column << ": " << message;
        return os.str();
      }()),
      line_(line),
      column_(column) {}

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ',') {
      advance(1);
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }
    const std::size_t tok_line = line;
    const std::size_t tok_col = column;
    if (c == '{') {
      tokens.push_back({TokenKind::kLBrace, "{", 0.0, tok_line, tok_col});
      advance(1);
      continue;
    }
    if (c == '}') {
      tokens.push_back({TokenKind::kRBrace, "}", 0.0, tok_line, tok_col});
      advance(1);
      continue;
    }
    if (c == '=') {
      tokens.push_back({TokenKind::kEquals, "=", 0.0, tok_line, tok_col});
      advance(1);
      continue;
    }
    if (c == ';') {
      tokens.push_back({TokenKind::kSemicolon, ";", 0.0, tok_line, tok_col});
      advance(1);
      continue;
    }
    if (c == '"') {
      std::string value;
      advance(1);
      bool closed = false;
      while (i < n) {
        if (source[i] == '"') {
          closed = true;
          advance(1);
          break;
        }
        if (source[i] == '\n') break;  // strings may not span lines
        if (source[i] == '\\' && i + 1 < n &&
            (source[i + 1] == '"' || source[i + 1] == '\\')) {
          value.push_back(source[i + 1]);
          advance(2);
          continue;
        }
        value.push_back(source[i]);
        advance(1);
      }
      if (!closed) {
        throw ParseError(tok_line, tok_col, "unterminated string literal");
      }
      tokens.push_back(
          {TokenKind::kString, std::move(value), 0.0, tok_line, tok_col});
      continue;
    }
    if (is_number_start(c) &&
        (std::isdigit(static_cast<unsigned char>(c)) ||
         (i + 1 < n && (std::isdigit(static_cast<unsigned char>(source[i + 1])) ||
                        source[i + 1] == '.')))) {
      std::size_t j = i;
      // Accept a float with optional exponent; std::from_chars validates.
      if (source[j] == '-' || source[j] == '+') ++j;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       source[j] == '.')) {
        ++j;
      }
      if (j < n && (source[j] == 'e' || source[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (source[k] == '-' || source[k] == '+')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(source[k]))) {
          ++k;
          while (k < n && std::isdigit(static_cast<unsigned char>(source[k]))) {
            ++k;
          }
          j = k;
        }
      }
      double value = 0.0;
      const auto result =
          std::from_chars(source.data() + i, source.data() + j, value);
      if (result.ec != std::errc{} || result.ptr != source.data() + j) {
        throw ParseError(tok_line, tok_col, "malformed number");
      }
      tokens.push_back({TokenKind::kNumber,
                        std::string(source.substr(i, j - i)), value, tok_line,
                        tok_col});
      advance(j - i);
      continue;
    }
    if (is_identifier_start(c)) {
      std::size_t j = i;
      while (j < n && is_identifier_char(source[j])) ++j;
      tokens.push_back({TokenKind::kIdentifier,
                        std::string(source.substr(i, j - i)), 0.0, tok_line,
                        tok_col});
      advance(j - i);
      continue;
    }
    throw ParseError(tok_line, tok_col,
                     std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEndOfInput, "", 0.0, line, column});
  return tokens;
}

}  // namespace rascad::spec
