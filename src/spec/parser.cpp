#include "spec/parser.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "obs/trace.hpp"

namespace rascad::spec {

namespace {

/// Native unit of a duration parameter, mirroring the paper's GUI labels.
enum class NativeUnit { kHours, kMinutes };

/// A parsed right-hand side: exactly one of the alternatives is set.
struct Value {
  enum class Kind { kNumber, kString, kEnum } kind;
  double number = 0.0;
  std::string text;       // string content or enum identifier
  std::string unit;       // normalized unit suffix, empty if none
  std::size_t line = 0;
  std::size_t column = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  ModelSpec parse() {
    ModelSpec model;
    if (peek().kind == TokenKind::kIdentifier && peek().text == "title") {
      next();
      expect(TokenKind::kEquals, "'=' after title");
      model.title = expect(TokenKind::kString, "string title").text;
      skip_separators();
    }
    if (peek().kind == TokenKind::kIdentifier && peek().text == "globals") {
      parse_globals(model.globals);
    }
    while (peek().kind != TokenKind::kEndOfInput) {
      const Token& t = peek();
      if (t.kind == TokenKind::kIdentifier && t.text == "diagram") {
        model.diagrams.push_back(parse_diagram());
      } else {
        throw ParseError(t.line, t.column,
                         "expected 'diagram', got '" + t.text + "'");
      }
    }
    if (model.diagrams.empty()) {
      throw ParseError(1, 1, "model contains no diagrams");
    }
    return model;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& next() { return tokens_[pos_++]; }

  const Token& expect(TokenKind kind, const char* what) {
    const Token& t = peek();
    if (t.kind != kind) {
      throw ParseError(t.line, t.column,
                       std::string("expected ") + what + ", got '" + t.text +
                           "'");
    }
    return next();
  }

  void skip_separators() {
    while (peek().kind == TokenKind::kSemicolon) next();
  }

  Value parse_value() {
    const Token& t = peek();
    Value v;
    v.line = t.line;
    v.column = t.column;
    if (t.kind == TokenKind::kNumber) {
      v.kind = Value::Kind::kNumber;
      v.number = t.number;
      next();
      // Optional unit suffix.
      if (peek().kind == TokenKind::kIdentifier && is_unit(peek().text)) {
        v.unit = peek().text;
        next();
      }
      return v;
    }
    if (t.kind == TokenKind::kString) {
      v.kind = Value::Kind::kString;
      v.text = t.text;
      next();
      return v;
    }
    if (t.kind == TokenKind::kIdentifier) {
      v.kind = Value::Kind::kEnum;
      v.text = t.text;
      next();
      return v;
    }
    throw ParseError(t.line, t.column, "expected a parameter value");
  }

  static bool is_unit(const std::string& s) {
    return s == "h" || s == "hr" || s == "hrs" || s == "hour" ||
           s == "hours" || s == "min" || s == "mins" || s == "minute" ||
           s == "minutes" || s == "s" || s == "sec" || s == "secs" ||
           s == "seconds" || s == "d" || s == "day" || s == "days" ||
           s == "y" || s == "yr" || s == "year" || s == "years" ||
           s == "fit" || s == "per_hour";
  }

  /// Converts a numeric value to hours, honoring an explicit unit or the
  /// parameter's native unit.
  static double to_hours(const Value& v, NativeUnit native) {
    if (v.unit.empty()) {
      return native == NativeUnit::kHours ? v.number : v.number / 60.0;
    }
    const std::string& u = v.unit;
    if (u == "h" || u == "hr" || u == "hrs" || u == "hour" || u == "hours") {
      return v.number;
    }
    if (u == "min" || u == "mins" || u == "minute" || u == "minutes") {
      return v.number / 60.0;
    }
    if (u == "s" || u == "sec" || u == "secs" || u == "seconds") {
      return v.number / 3600.0;
    }
    if (u == "d" || u == "day" || u == "days") return v.number * 24.0;
    if (u == "y" || u == "yr" || u == "year" || u == "years") {
      return v.number * 8760.0;
    }
    throw ParseError(v.line, v.column, "'" + u + "' is not a time unit here");
  }

  static double duration_hours(const Value& v, NativeUnit native) {
    if (v.kind != Value::Kind::kNumber) {
      throw ParseError(v.line, v.column, "expected a duration");
    }
    const double h = to_hours(v, native);
    if (!(h >= 0.0) || !std::isfinite(h)) {
      throw ParseError(v.line, v.column, "duration must be non-negative");
    }
    return h;
  }

  static double duration_minutes(const Value& v) {
    return duration_hours(v, NativeUnit::kMinutes) * 60.0;
  }

  static double probability(const Value& v) {
    if (v.kind != Value::Kind::kNumber || !v.unit.empty()) {
      throw ParseError(v.line, v.column, "expected a probability");
    }
    if (v.number < 0.0 || v.number > 1.0) {
      throw ParseError(v.line, v.column, "probability must be in [0, 1]");
    }
    return v.number;
  }

  static unsigned count(const Value& v) {
    if (v.kind != Value::Kind::kNumber || !v.unit.empty()) {
      throw ParseError(v.line, v.column, "expected a count");
    }
    if (v.number < 0.0 || v.number != std::floor(v.number) ||
        v.number > 1e6) {
      throw ParseError(v.line, v.column,
                       "expected a non-negative integer count");
    }
    return static_cast<unsigned>(v.number);
  }

  static double fit_rate(const Value& v) {
    if (v.kind != Value::Kind::kNumber) {
      throw ParseError(v.line, v.column, "expected a failure rate");
    }
    if (v.number < 0.0) {
      throw ParseError(v.line, v.column, "failure rate must be non-negative");
    }
    if (v.unit.empty() || v.unit == "fit") return v.number;
    if (v.unit == "per_hour") return v.number * 1e9;
    throw ParseError(v.line, v.column,
                     "transient rates take 'fit' or 'per_hour'");
  }

  static Transparency transparency(const Value& v) {
    if (v.kind == Value::Kind::kEnum) {
      if (v.text == "transparent") return Transparency::kTransparent;
      if (v.text == "nontransparent" || v.text == "non_transparent") {
        return Transparency::kNontransparent;
      }
    }
    throw ParseError(v.line, v.column,
                     "expected 'transparent' or 'nontransparent'");
  }

  static std::string string_value(const Value& v) {
    if (v.kind != Value::Kind::kString) {
      throw ParseError(v.line, v.column, "expected a quoted string");
    }
    return v.text;
  }

  void parse_globals(GlobalParams& g) {
    next();  // 'globals'
    expect(TokenKind::kLBrace, "'{' after globals");
    while (peek().kind != TokenKind::kRBrace) {
      const Token key = expect(TokenKind::kIdentifier, "a global parameter");
      expect(TokenKind::kEquals, "'='");
      const Value v = parse_value();
      if (key.text == "reboot_time") {
        g.reboot_time_h = duration_hours(v, NativeUnit::kMinutes);
      } else if (key.text == "mttm") {
        g.mttm_h = duration_hours(v, NativeUnit::kHours);
      } else if (key.text == "mttrfid") {
        g.mttrfid_h = duration_hours(v, NativeUnit::kHours);
      } else if (key.text == "mission_time") {
        g.mission_time_h = duration_hours(v, NativeUnit::kHours);
      } else {
        throw ParseError(key.line, key.column,
                         "unknown global parameter '" + key.text + "'");
      }
      skip_separators();
    }
    next();  // '}'
    skip_separators();
  }

  DiagramSpec parse_diagram() {
    next();  // 'diagram'
    DiagramSpec diagram;
    diagram.name = expect(TokenKind::kString, "diagram name").text;
    expect(TokenKind::kLBrace, "'{' after diagram name");
    while (peek().kind != TokenKind::kRBrace) {
      const Token& t = peek();
      if (t.kind == TokenKind::kIdentifier && t.text == "block") {
        diagram.blocks.push_back(parse_block());
      } else {
        throw ParseError(t.line, t.column,
                         "expected 'block', got '" + t.text + "'");
      }
    }
    next();  // '}'
    skip_separators();
    return diagram;
  }

  BlockSpec parse_block() {
    next();  // 'block'
    BlockSpec block;
    block.name = expect(TokenKind::kString, "block name").text;
    expect(TokenKind::kLBrace, "'{' after block name");
    while (peek().kind != TokenKind::kRBrace) {
      const Token key = expect(TokenKind::kIdentifier, "a block parameter");
      expect(TokenKind::kEquals, "'='");
      const Value v = parse_value();
      apply_block_param(block, key, v);
      skip_separators();
    }
    next();  // '}'
    skip_separators();
    return block;
  }

  static void apply_block_param(BlockSpec& b, const Token& key,
                                const Value& v) {
    const std::string& k = key.text;
    if (k == "part_number") {
      b.part_number = string_value(v);
    } else if (k == "description") {
      b.description = string_value(v);
    } else if (k == "quantity") {
      b.quantity = count(v);
    } else if (k == "min_quantity") {
      b.min_quantity = count(v);
    } else if (k == "mtbf") {
      b.mtbf_h = duration_hours(v, NativeUnit::kHours);
    } else if (k == "transient_rate") {
      b.transient_fit = fit_rate(v);
    } else if (k == "mttr_diagnosis") {
      b.mttr_diagnosis_min = duration_minutes(v);
    } else if (k == "mttr_corrective") {
      b.mttr_corrective_min = duration_minutes(v);
    } else if (k == "mttr_verification") {
      b.mttr_verification_min = duration_minutes(v);
    } else if (k == "service_response") {
      b.service_response_h = duration_hours(v, NativeUnit::kHours);
    } else if (k == "p_correct_diagnosis") {
      b.p_correct_diagnosis = probability(v);
    } else if (k == "p_latent_fault") {
      b.p_latent_fault = probability(v);
    } else if (k == "mttdlf") {
      b.mttdlf_h = duration_hours(v, NativeUnit::kHours);
    } else if (k == "recovery") {
      b.recovery = transparency(v);
    } else if (k == "ar_time") {
      b.ar_time_min = duration_minutes(v);
    } else if (k == "p_spf") {
      b.p_spf = probability(v);
    } else if (k == "t_spf") {
      b.t_spf_min = duration_minutes(v);
    } else if (k == "repair") {
      b.repair = transparency(v);
    } else if (k == "reintegration_time") {
      b.reintegration_min = duration_minutes(v);
    } else if (k == "mode") {
      if (v.kind == Value::Kind::kEnum && v.text == "symmetric") {
        b.mode = RedundancyMode::kSymmetric;
      } else if (v.kind == Value::Kind::kEnum &&
                 v.text == "primary_standby") {
        b.mode = RedundancyMode::kPrimaryStandby;
      } else {
        throw ParseError(v.line, v.column,
                         "expected 'symmetric' or 'primary_standby'");
      }
    } else if (k == "failover_time") {
      b.failover_time_min = duration_minutes(v);
    } else if (k == "p_failover") {
      b.p_failover = probability(v);
    } else if (k == "subdiagram") {
      b.subdiagram = string_value(v);
    } else {
      throw ParseError(key.line, key.column,
                       "unknown block parameter '" + k + "'");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ModelSpec parse_model(std::string_view source) {
  obs::Span span("spec.parse");
  if (span.active()) {
    span.set_detail("bytes=" + std::to_string(source.size()));
  }
  return Parser(source).parse();
}

ModelSpec parse_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_model(buffer.str());
}

}  // namespace rascad::spec
