#include "linalg/csr.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace rascad::linalg {

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void CsrBuilder::add(std::size_t r, std::size_t c, double value) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("CsrBuilder::add: index out of range");
  }
  if (value == 0.0) return;
  triplets_.push_back({r, c, value});
}

CsrMatrix CsrBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.values_.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    m.row_ptr_[r] = m.values_.size();
    while (i < sorted.size() && sorted[i].row == r) {
      const std::size_t c = sorted[i].col;
      double v = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        v += sorted[i].value;
        ++i;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
  }
  m.row_ptr_[rows_] = m.values_.size();
  return m;
}

Vector CsrMatrix::mul(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::mul: shape mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Vector CsrMatrix::mul_transpose(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::mul_transpose: shape mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xr;
    }
  }
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("CsrMatrix::at: index out of range");
  }
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

double CsrMatrix::max_abs_diagonal() const noexcept {
  double m = 0.0;
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(at(i, i)));
  return m;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrBuilder b(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      b.add(col_idx_[k], r, values_[k]);
    }
  }
  return b.build();
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m(r, col_idx_[k]) = values_[k];
    }
  }
  return m;
}

Vector CsrMatrix::row_sums() const {
  Vector s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s[r] += values_[k];
    }
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const CsrMatrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t k = 0; k < row.size; ++k) {
      os << '(' << r << ", " << row.cols[k] << ") = " << row.values[k] << '\n';
    }
  }
  return os;
}

}  // namespace rascad::linalg
