#include "linalg/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "linalg/arena.hpp"

namespace rascad::linalg {

namespace {

constexpr std::uint32_t kMaxIndex =
    std::numeric_limits<std::uint32_t>::max() - 1;

}  // namespace

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  if (rows > kMaxIndex || cols > kMaxIndex) {
    throw std::length_error("CsrBuilder: dimensions exceed 32-bit index");
  }
}

void CsrBuilder::add(std::size_t r, std::size_t c, double value) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("CsrBuilder::add: index out of range");
  }
  if (value == 0.0) return;
  if (t_vals_.size() > kMaxIndex) {
    throw std::length_error("CsrBuilder: entry count exceeds 32-bit index");
  }
  t_rows_.push_back(static_cast<std::uint32_t>(r));
  t_cols_.push_back(static_cast<std::uint32_t>(c));
  t_vals_.push_back(value);
}

void CsrBuilder::reserve(std::size_t nnz) {
  t_rows_.reserve(nnz);
  t_cols_.reserve(nnz);
  t_vals_.reserve(nnz);
}

CsrMatrix CsrBuilder::build() const {
  const std::size_t n = t_vals_.size();
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.col_idx_.reserve(n);
  m.values_.reserve(n);

  // Stable counting sort by row on arena scratch: one count pass, one
  // prefix pass, one scatter pass. Within a row the scatter preserves
  // insertion order, so after the (stable) per-row column sort, duplicate
  // entries are summed in insertion order — deterministic regardless of
  // how many entries the builder saw.
  Arena& arena = thread_arena();
  arena.reset();
  std::uint32_t* start = arena.allocate<std::uint32_t>(rows_ + 1);
  std::uint32_t* scratch_cols = arena.allocate<std::uint32_t>(n);
  double* scratch_vals = arena.allocate<double>(n);

  std::memset(start, 0, (rows_ + 1) * sizeof(std::uint32_t));
  for (std::size_t t = 0; t < n; ++t) ++start[t_rows_[t] + 1];
  for (std::size_t r = 0; r < rows_; ++r) start[r + 1] += start[r];
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint32_t pos = start[t_rows_[t]]++;
    scratch_cols[pos] = t_cols_[t];
    scratch_vals[pos] = t_vals_[t];
  }
  // `start` has shifted one row forward: start[r] is now the END of row r
  // (and row 0 begins at 0).

  std::size_t begin = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t end = start[r];
    // Stable insertion sort by column: generated rows hold a handful of
    // arcs, where this beats a general sort and keeps equal columns in
    // insertion order.
    for (std::size_t i = begin + 1; i < end; ++i) {
      const std::uint32_t c = scratch_cols[i];
      const double v = scratch_vals[i];
      std::size_t j = i;
      while (j > begin && scratch_cols[j - 1] > c) {
        scratch_cols[j] = scratch_cols[j - 1];
        scratch_vals[j] = scratch_vals[j - 1];
        --j;
      }
      scratch_cols[j] = c;
      scratch_vals[j] = v;
    }
    // Merge duplicates; entries whose merged value is exactly zero are
    // dropped (same rule the triplet path always applied).
    m.row_ptr_[r] = static_cast<std::uint32_t>(m.values_.size());
    std::size_t i = begin;
    while (i < end) {
      const std::uint32_t c = scratch_cols[i];
      double v = 0.0;
      while (i < end && scratch_cols[i] == c) {
        v += scratch_vals[i];
        ++i;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    begin = end;
  }
  m.row_ptr_[rows_] = static_cast<std::uint32_t>(m.values_.size());
  arena.reset();
  return m;
}

Vector CsrMatrix::mul(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::mul: shape mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Vector CsrMatrix::mul_transpose(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::mul_transpose: shape mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xr;
    }
  }
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("CsrMatrix::at: index out of range");
  }
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

double CsrMatrix::max_abs_diagonal() const noexcept {
  double m = 0.0;
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(at(i, i)));
  return m;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrBuilder b(cols_, rows_);
  b.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      b.add(col_idx_[k], r, values_[k]);
    }
  }
  return b.build();
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m(r, col_idx_[k]) = values_[k];
    }
  }
  return m;
}

Vector CsrMatrix::row_sums() const {
  Vector s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s[r] += values_[k];
    }
  }
  return s;
}

bool CsrMatrix::same_pattern(const CsrMatrix& other) const noexcept {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
}

std::ostream& operator<<(std::ostream& os, const CsrMatrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t k = 0; k < row.size; ++k) {
      os << '(' << r << ", " << row.cols[k] << ") = " << row.values[k] << '\n';
    }
  }
  return os;
}

}  // namespace rascad::linalg
