// Batched panel kernels behind the multi-RHS solvers.
//
// Panels are lane-interleaved: entry (i, j) of an n x k panel lives at
// p[i*k + j], so lane j is a strided view and the inner loops vectorize
// *across lanes* (vertical SIMD). That layout is what makes the batched
// kernels bitwise-identical to scalar per-lane execution: every lane sees
// exactly the scalar operation sequence, and vectorizing across lanes
// reorders nothing within a lane.
//
// The kernel bodies live in batch_kernels.inl and are compiled twice: once
// in batch_kernels_scalar.cpp at the baseline ISA and once in
// batch_kernels_avx2.cpp with -mavx2 (no -mfma: FP contraction would break
// the lane-for-lane bitwise contract). active_ops() dispatches between the
// two at runtime via simd::active_isa().
//
// `vals` is either shared (length nnz, one matrix, k right-hand sides) or
// multi (length nnz*k, lane-interleaved values of k same-pattern
// matrices). `active` masks lanes: nullptr means all lanes; a frozen
// (inactive) lane's state vector is never written, which is how columns
// that converge early keep their bitwise-final values while the rest of
// the batch continues.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rascad::linalg::kernels {

struct PanelOps {
  /// y = A x per lane, shared matrix: y[r*k+j] = sum_e vals[e] * x[c_e*k+j].
  void (*spmv_shared)(std::size_t n, std::size_t k,
                      const std::uint32_t* row_ptr, const std::uint32_t* cols,
                      const double* vals, const double* x, double* y);
  /// y = A_j x_j per lane, lane-interleaved values vals[e*k+j].
  void (*spmv_multi)(std::size_t n, std::size_t k,
                     const std::uint32_t* row_ptr, const std::uint32_t* cols,
                     const double* vals, const double* x, double* y);
  /// One in-place SOR/Gauss-Seidel sweep of A x = b per lane (shared
  /// matrix, diag length n). acc is caller scratch of k doubles. change[j]
  /// accumulates max |update| per lane (caller zeroes it per sweep).
  void (*sor_linear_shared)(std::size_t n, std::size_t k,
                            const std::uint32_t* row_ptr,
                            const std::uint32_t* cols, const double* vals,
                            const double* b, const double* diag, double omega,
                            const unsigned char* active, double* x,
                            double* change, double* acc);
  /// One Jacobi sweep of A x = b per lane (shared matrix): writes `next`
  /// (frozen lanes copy x), accumulates change[j] = max |next - x|.
  void (*jacobi_shared)(std::size_t n, std::size_t k,
                        const std::uint32_t* row_ptr,
                        const std::uint32_t* cols, const double* vals,
                        const double* b, const double* diag,
                        const unsigned char* active, const double* x,
                        double* next, double* change);
  /// One in-place SOR sweep of the stationary fixed point
  /// pi_i <- pi_i + omega * (inflow_i / diag_i - pi_i) per lane, with
  /// lane-interleaved matrix values and diag panel (both length *k); the
  /// diagonal entry of each row is skipped. Mirrors
  /// markov::solve_steady_state's SOR inner loop lane-for-lane.
  void (*sor_stationary_multi)(std::size_t n, std::size_t k,
                               const std::uint32_t* row_ptr,
                               const std::uint32_t* cols, const double* vals,
                               const double* diag, double omega,
                               const unsigned char* active, double* x,
                               double* change, double* acc);
};

namespace scalar {
extern const PanelOps ops;
}
namespace avx2 {
// Same code compiled with -mavx2 where the toolchain supports it; on other
// targets this is a second copy of the scalar instantiation, so dispatch
// is always safe.
extern const PanelOps ops;
}

/// The PanelOps matching simd::active_isa().
const PanelOps& active_ops();

}  // namespace rascad::linalg::kernels
