// AVX2 instantiation of the batched panel kernels: identical source,
// compiled with -mavx2 (and deliberately WITHOUT -mfma — contraction would
// change lane results and break the bitwise contract with the scalar
// instantiation). On toolchains without the flag this is simply a second
// baseline copy, so runtime dispatch never needs a build-time guard.
#include "linalg/batch_kernels.hpp"

#define RASCAD_KERNEL_NS avx2
#include "linalg/batch_kernels.inl"
#undef RASCAD_KERNEL_NS
