#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define RASCAD_HAVE_AVX2_PATH 1
#include <immintrin.h>
#else
#define RASCAD_HAVE_AVX2_PATH 0
#endif

namespace rascad::linalg::simd {

namespace {

// -1: no override; otherwise the forced Isa value.
std::atomic<int> g_forced{-1};

bool env_allows_simd() {
  const char* e = std::getenv("RASCAD_SIMD");
  if (e == nullptr) return true;
  return !(std::strcmp(e, "0") == 0 || std::strcmp(e, "scalar") == 0 ||
           std::strcmp(e, "off") == 0);
}

Isa policy_isa() noexcept {
  // Environment + CPU probe, evaluated once per process.
  static const Isa isa = (env_allows_simd() && avx2_supported())
                             ? Isa::kAvx2
                             : Isa::kScalar;
  return isa;
}

void spmv_scalar(std::size_t n, const std::uint32_t* row_ptr,
                 const std::uint32_t* cols, const double* vals,
                 const double* x, double* y) {
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += vals[k] * x[cols[k]];
    }
    y[r] = acc;
  }
}

#if RASCAD_HAVE_AVX2_PATH
__attribute__((target("avx2,fma"))) void spmv_avx2(
    std::size_t n, const std::uint32_t* row_ptr, const std::uint32_t* cols,
    const double* vals, const double* x, double* y) {
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t begin = row_ptr[r];
    const std::uint32_t end = row_ptr[r + 1];
    std::uint32_t k = begin;
    __m256d acc = _mm256_setzero_pd();
    for (; k + 4 <= end; k += 4) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cols + k));
      const __m256d xv = _mm256_i32gather_pd(x, idx, 8);
      const __m256d av = _mm256_loadu_pd(vals + k);
      acc = _mm256_fmadd_pd(av, xv, acc);
    }
    __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    lo = _mm_add_pd(lo, hi);
    double s = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
    for (; k < end; ++k) s += vals[k] * x[cols[k]];
    y[r] = s;
  }
}
#endif

}  // namespace

bool avx2_supported() noexcept {
#if RASCAD_HAVE_AVX2_PATH
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa active_isa() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const Isa isa = static_cast<Isa>(forced);
    if (isa == Isa::kAvx2 && !avx2_supported()) return policy_isa();
    return isa;
  }
  return policy_isa();
}

void force_isa(std::optional<Isa> isa) noexcept {
  g_forced.store(isa ? static_cast<int>(*isa) : -1,
                 std::memory_order_relaxed);
}

void spmv(const CsrMatrix& a, const double* x, double* y) {
#if RASCAD_HAVE_AVX2_PATH
  if (active_isa() == Isa::kAvx2) {
    spmv_avx2(a.rows(), a.row_ptr_data(), a.col_idx_data(), a.values_data(),
              x, y);
    return;
  }
#endif
  spmv_scalar(a.rows(), a.row_ptr_data(), a.col_idx_data(), a.values_data(),
              x, y);
}

Vector spmv(const CsrMatrix& a, const Vector& x) {
  if (x.size() != a.cols()) {
    throw std::invalid_argument("simd::spmv: shape mismatch");
  }
  Vector y(a.rows(), 0.0);
  spmv(a, x.data(), y.data());
  return y;
}

}  // namespace rascad::linalg::simd
