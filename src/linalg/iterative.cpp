#include "linalg/iterative.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/simd.hpp"
#include "resilience/solve_error.hpp"

namespace rascad::linalg {

namespace {

Vector checked_diagonal(const CsrMatrix& a, const char* who) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument(std::string(who) + ": matrix must be square");
  }
  Vector d = a.diagonal();
  for (double x : d) {
    if (x == 0.0) {
      // The diagonal splitting is singular: the sweep cannot even start.
      throw resilience::SolveError(resilience::SolveCause::kSingular, who,
                                   "zero diagonal entry");
    }
  }
  return d;
}

/// Cooperative checkpoint at the top of a solver loop: polls the token on
/// iteration 1 and then every opts.cancel_check_interval iterations.
/// Throws kCancelled/kDeadlineExceeded; never touches solver state, so an
/// uncancelled run is bitwise identical to a token-free one.
inline void checkpoint(const IterativeOptions& opts, std::size_t it,
                       const char* who, double residual) {
  if (!opts.cancel.valid()) return;
  const std::size_t interval =
      opts.cancel_check_interval > 0 ? opts.cancel_check_interval : 1;
  if (it != 1 && it % interval != 0) return;
  robust::throw_if_stopped(opts.cancel, who, it - 1, residual);
}

}  // namespace

IterativeResult jacobi_solve(const CsrMatrix& a, const Vector& b,
                             const IterativeOptions& opts) {
  const Vector diag = checked_diagonal(a, "jacobi_solve");
  const std::size_t n = a.rows();
  if (b.size() != n) {
    throw std::invalid_argument("jacobi_solve: size mismatch");
  }
  Vector x(n, 0.0);
  Vector next(n, 0.0);
  IterativeResult result;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    checkpoint(opts, it, "jacobi_solve", result.residual);
    for (std::size_t r = 0; r < n; ++r) {
      double acc = b[r];
      const auto row = a.row(r);
      for (std::size_t k = 0; k < row.size; ++k) {
        if (row.cols[k] != r) acc -= row.values[k] * x[row.cols[k]];
      }
      next[r] = acc / diag[r];
    }
    const double change = max_abs_diff(next, x);
    x.swap(next);
    result.iterations = it;
    result.residual = change;
    if (change < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.solution = std::move(x);
  return result;
}

IterativeResult sor_solve(const CsrMatrix& a, const Vector& b,
                          const IterativeOptions& opts) {
  const Vector diag = checked_diagonal(a, "sor_solve");
  const std::size_t n = a.rows();
  if (b.size() != n) {
    throw std::invalid_argument("sor_solve: size mismatch");
  }
  const double omega = opts.relaxation;
  Vector x(n, 0.0);
  IterativeResult result;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    checkpoint(opts, it, "sor_solve", result.residual);
    double change = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double acc = b[r];
      const auto row = a.row(r);
      for (std::size_t k = 0; k < row.size; ++k) {
        if (row.cols[k] != r) acc -= row.values[k] * x[row.cols[k]];
      }
      const double gs = acc / diag[r];
      const double updated = x[r] + omega * (gs - x[r]);
      change = std::max(change, std::abs(updated - x[r]));
      x[r] = updated;
    }
    result.iterations = it;
    result.residual = change;
    if (change < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.solution = std::move(x);
  return result;
}

IterativeResult bicgstab_solve(const CsrMatrix& a, const Vector& b,
                               const IterativeOptions& opts) {
  const std::size_t n = a.rows();
  if (a.rows() != a.cols() || b.size() != n) {
    throw std::invalid_argument("bicgstab_solve: size mismatch");
  }
  IterativeResult result;
  Vector x(n, 0.0);
  Vector r = b;  // r = b - A*0
  Vector r_hat = r;
  Vector p(n, 0.0);
  Vector v(n, 0.0);
  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  const double b_norm = std::max(norm2(b), 1e-300);

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    checkpoint(opts, it, "bicgstab_solve", result.residual);
    const double rho_next = dot(r_hat, r);
    if (std::abs(rho_next) < 1e-300) break;  // breakdown
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    v = a.mul(p);
    const double rhv = dot(r_hat, v);
    if (std::abs(rhv) < 1e-300) break;  // breakdown
    alpha = rho / rhv;
    Vector s = r;
    axpy(-alpha, v, s);
    if (norm2(s) / b_norm < opts.tolerance) {
      axpy(alpha, p, x);
      result.iterations = it;
      result.residual = norm2(s) / b_norm;
      result.converged = true;
      break;
    }
    const Vector t = a.mul(s);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;  // breakdown
    omega = dot(t, s) / tt;
    axpy(alpha, p, x);
    axpy(omega, s, x);
    r = s;
    axpy(-omega, t, r);
    result.iterations = it;
    result.residual = norm2(r) / b_norm;
    if (!std::isfinite(result.residual)) {
      // A NaN/Inf residual never recovers; bail out as non-converged so
      // the resilience ladder can escalate instead of burning the full
      // iteration budget on poisoned arithmetic.
      result.converged = false;
      break;
    }
    if (result.residual < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.solution = std::move(x);
  return result;
}

IterativeResult power_stationary(const CsrMatrix& p,
                                 const IterativeOptions& opts,
                                 std::optional<Vector> start) {
  if (p.rows() != p.cols()) {
    throw std::invalid_argument("power_stationary: matrix must be square");
  }
  const std::size_t n = p.rows();
  Vector pi = start ? std::move(*start)
                    : Vector(n, n ? 1.0 / static_cast<double>(n) : 0.0);
  if (pi.size() != n) {
    throw std::invalid_argument("power_stationary: start size mismatch");
  }
  IterativeResult result;
  // Transpose once, then every iteration is a forward SpMV through the
  // dispatched (scalar/AVX2) kernel.
  const CsrMatrix pt = p.transposed();
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    checkpoint(opts, it, "power_stationary", result.residual);
    Vector next = simd::spmv(pt, pi);
    normalize_sum(next);
    const double change = max_abs_diff(next, pi);
    pi = std::move(next);
    result.iterations = it;
    result.residual = change;
    if (change < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.solution = std::move(pi);
  return result;
}

}  // namespace rascad::linalg
