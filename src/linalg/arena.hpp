// Chunked bump allocator backing CSR assembly scratch.
//
// Assembling a CSR matrix needs transient buffers (triplet staging, per-row
// counters, scatter cursors) whose lifetime ends when build() returns.
// Allocating them from the general heap on every chain generation is both
// slow and fragmenting, so assembly draws from an Arena: a list of
// 64-byte-aligned chunks served by bump-pointer allocation and recycled
// wholesale by reset().
//
// Lifetime rules (see docs/numerics.md):
//  - Arena memory is valid until reset() or destruction; individual
//    allocations are never freed.
//  - reset() keeps the largest chunk, so a reused arena converges to
//    zero allocations per assembly.
//  - The thread_local arena returned by thread_arena() must only feed
//    allocations that are released (via reset) before the caller returns;
//    it is how chain generation runs arena-backed with no API changes.
//  - A CsrMatrix never aliases arena memory: build() copies the finished
//    arrays into the matrix's own AlignedVector storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "linalg/aligned.hpp"

namespace rascad::linalg {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 1 << 14)
      : initial_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Chunk& c : chunks_) release(c);
  }

  /// Bump-allocates `count` objects of T, 64-byte aligned. The memory is
  /// uninitialized; it lives until reset() or destruction.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(alignof(T) <= kSimdAlignment);
    return static_cast<T*>(allocate_bytes(count * sizeof(T)));
  }

  void* allocate_bytes(std::size_t bytes) {
    bytes = (bytes + kSimdAlignment - 1) & ~(kSimdAlignment - 1);
    if (chunks_.empty() || used_ + bytes > chunks_.back().size) {
      grow(bytes);
    }
    void* p = chunks_.back().base + used_;
    used_ += bytes;
    return p;
  }

  /// Recycles every allocation. The largest chunk is kept so steady-state
  /// reuse allocates nothing.
  void reset() {
    if (chunks_.empty()) return;
    std::size_t largest = 0;
    for (std::size_t i = 1; i < chunks_.size(); ++i) {
      if (chunks_[i].size > chunks_[largest].size) largest = i;
    }
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (i != largest) release(chunks_[i]);
    }
    chunks_ = {chunks_[largest]};
    used_ = 0;
  }

  /// Total bytes currently reserved across chunks (tests / diagnostics).
  std::size_t capacity_bytes() const noexcept {
    std::size_t acc = 0;
    for (const Chunk& c : chunks_) acc += c.size;
    return acc;
  }

 private:
  struct Chunk {
    char* base = nullptr;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = chunks_.empty() ? initial_bytes_
                                       : chunks_.back().size * 2;
    if (size < at_least) size = at_least;
    Chunk c;
    c.base = static_cast<char*>(
        ::operator new(size, std::align_val_t{kSimdAlignment}));
    c.size = size;
    chunks_.push_back(c);
    used_ = 0;
  }

  static void release(Chunk& c) {
    ::operator delete(c.base, std::align_val_t{kSimdAlignment});
    c.base = nullptr;
  }

  std::size_t initial_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;  // bytes used in chunks_.back()
};

/// Per-thread scratch arena for CSR assembly. Callers must reset() before
/// use and must not hold arena pointers across calls that may also use it.
Arena& thread_arena();

}  // namespace rascad::linalg
