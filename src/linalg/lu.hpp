// LU factorization with partial pivoting — the direct linear solver behind
// steady-state and MTTF analysis of generated Markov chains.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/dense.hpp"

namespace rascad::linalg {

/// PA = LU factorization with partial (row) pivoting.
///
/// Throws resilience::SolveError with cause kSingular (an is-a
/// std::runtime_error; historically this was a std::domain_error) if the
/// matrix is numerically singular, i.e. a pivot below the singularity
/// threshold is encountered.
class LuFactorization {
 public:
  explicit LuFactorization(DenseMatrix a, double pivot_tolerance = 1e-13);

  std::size_t size() const noexcept { return lu_.rows(); }

  /// Solves A x = b. Throws std::invalid_argument on size mismatch.
  Vector solve(const Vector& b) const;

  /// Solves A^T x = b (forward/backward sweep on the same factors).
  Vector solve_transpose(const Vector& b) const;

  /// det(A), computed from the pivots (sign-adjusted for row swaps).
  double determinant() const noexcept;

  /// Number of row exchanges performed during factorization.
  std::size_t swap_count() const noexcept { return swaps_; }

  /// (min, max) of |U(k,k)| over the pivots. Their ratio is a free O(n)
  /// lower-bound proxy for the condition number of A.
  std::pair<double, double> pivot_extremes() const noexcept;

 private:
  DenseMatrix lu_;               // L (unit lower, below diag) and U (upper)
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is perm_[i] of A
  std::size_t swaps_ = 0;
};

/// One-shot convenience: solve A x = b via LU. Throws
/// resilience::SolveError(kSingular) on a singular matrix.
Vector lu_solve(DenseMatrix a, const Vector& b);

}  // namespace rascad::linalg
