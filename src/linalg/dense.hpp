// Dense matrix and vector primitives used by the Markov and RBD engines.
//
// The matrices arising from generated availability models are small-to-medium
// (tens to a few thousand states), so a cache-friendly row-major dense matrix
// plus LU factorization covers the direct-solve path; the CSR type in
// csr.hpp covers the iterative/transient path for larger chains.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace rascad::linalg {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from an initializer-list of rows; all rows must have equal
  /// length. Throws std::invalid_argument on ragged input.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access. Throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  const double* row_data(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }
  double* row_data(std::size_t r) noexcept { return data_.data() + r * cols_; }

  DenseMatrix transposed() const;

  DenseMatrix& operator+=(const DenseMatrix& rhs);
  DenseMatrix& operator-=(const DenseMatrix& rhs);
  DenseMatrix& operator*=(double s) noexcept;

  friend DenseMatrix operator+(DenseMatrix a, const DenseMatrix& b) {
    a += b;
    return a;
  }
  friend DenseMatrix operator-(DenseMatrix a, const DenseMatrix& b) {
    a -= b;
    return a;
  }
  friend DenseMatrix operator*(DenseMatrix a, double s) noexcept {
    a *= s;
    return a;
  }
  friend DenseMatrix operator*(double s, DenseMatrix a) noexcept {
    a *= s;
    return a;
  }

  /// Matrix-matrix product. Throws std::invalid_argument on shape mismatch.
  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b);

  bool same_shape(const DenseMatrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const DenseMatrix& m);

/// y = A * x. Throws std::invalid_argument on shape mismatch.
Vector mat_vec(const DenseMatrix& a, const Vector& x);

/// y = A^T * x. Throws std::invalid_argument on shape mismatch.
Vector mat_transpose_vec(const DenseMatrix& a, const Vector& x);

double dot(const Vector& a, const Vector& b);
double norm1(const Vector& v) noexcept;
double norm2(const Vector& v) noexcept;
double norm_inf(const Vector& v) noexcept;
double sum(const Vector& v) noexcept;

/// v += alpha * w (axpy). Throws std::invalid_argument on size mismatch.
void axpy(double alpha, const Vector& w, Vector& v);

/// v *= alpha.
void scale(Vector& v, double alpha) noexcept;

/// Normalize v so its entries sum to one. Throws std::domain_error if the
/// sum is not strictly positive.
void normalize_sum(Vector& v);

/// max_i |a_i - b_i|. Throws std::invalid_argument on size mismatch.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace rascad::linalg
