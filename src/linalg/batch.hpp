// Batched multi-RHS / multi-matrix solves over shared CSR patterns.
//
// Two batching shapes exist (docs/numerics.md "Batching semantics"):
//  - multi-RHS: one matrix, k right-hand sides. The batched Jacobi / SOR /
//    BiCGStab entry points in iterative.hpp sweep all k columns through a
//    single traversal of the matrix per iteration.
//  - multi-matrix: k matrices sharing one sparsity pattern (CsrBatch),
//    lane-interleaved values, one logical system per lane. This is the
//    engine under the structure-sharing sweep dispatch: sweep points whose
//    generated chains differ only in rates batch into one solve.
//
// Contract: per lane, results (solution bits, iteration counts, residuals,
// convergence flags) are identical to running the scalar solver on that
// lane alone. Lanes that converge or break down early are frozen while the
// remaining lanes continue.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/aligned.hpp"
#include "linalg/csr.hpp"
#include "linalg/iterative.hpp"

namespace rascad::linalg {

/// k CSR matrices sharing one sparsity pattern, packed into a
/// lane-interleaved value panel (values[e*lanes + j] is entry e of lane
/// j's matrix). The pattern arrays are copied, so a batch outlives the
/// matrices it was packed from.
class CsrBatch {
 public:
  /// Packs the given matrices; returns nullopt when the list is empty or
  /// the sparsity patterns are not identical.
  static std::optional<CsrBatch> pack(
      const std::vector<const CsrMatrix*>& mats);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return col_idx_.size(); }
  std::size_t lanes() const noexcept { return lanes_; }

  const std::uint32_t* row_ptr_data() const noexcept {
    return row_ptr_.data();
  }
  const std::uint32_t* col_idx_data() const noexcept {
    return col_idx_.data();
  }
  /// Lane-interleaved values, nnz() * lanes() entries.
  const double* values_data() const noexcept { return values_.data(); }

 private:
  CsrBatch() = default;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t lanes_ = 0;
  AlignedVector<std::uint32_t> row_ptr_;
  AlignedVector<std::uint32_t> col_idx_;
  AlignedVector<double> values_;  // nnz * lanes, lane-interleaved
};

/// BiCGSTAB over a multi-matrix batch: lane j solves
/// batch-matrix j * x_j = bs[j]. `bs` must hold lanes() vectors of rows()
/// entries. Per lane bitwise-identical to bicgstab_solve on that system.
std::vector<IterativeResult> bicgstab_solve_batched(
    const CsrBatch& batch, const std::vector<Vector>& bs,
    const IterativeOptions& opts = {});

}  // namespace rascad::linalg
