#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "resilience/solve_error.hpp"

namespace rascad::linalg {

LuFactorization::LuFactorization(DenseMatrix a, double pivot_tolerance)
    : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining column entry to (k, k).
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tolerance) {
      throw resilience::SolveError(resilience::SolveCause::kSingular,
                                   "LuFactorization",
                                   "matrix is singular (pivot " +
                                       std::to_string(pivot_mag) +
                                       " at column " + std::to_string(k) +
                                       ")");
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
      ++swaps_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactorization::solve: size mismatch");
  }
  // L y = P b (unit lower triangular, forward).
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // U x = y (backward).
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Vector LuFactorization::solve_transpose(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument(
        "LuFactorization::solve_transpose: size mismatch");
  }
  // A^T = U^T L^T P, so solve U^T y = b, L^T w = y, then undo the permutation.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
    y[i] = acc / lu_(i, i);
  }
  Vector w(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * w[j];
    w[ii] = acc;  // L has unit diagonal
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

double LuFactorization::determinant() const noexcept {
  double det = (swaps_ % 2 == 0) ? 1.0 : -1.0;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

std::pair<double, double> LuFactorization::pivot_extremes() const noexcept {
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    const double mag = std::abs(lu_(i, i));
    if (i == 0 || mag < lo) lo = mag;
    if (mag > hi) hi = mag;
  }
  return {lo, hi};
}

Vector lu_solve(DenseMatrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace rascad::linalg
