#include "linalg/arena.hpp"

namespace rascad::linalg {

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace rascad::linalg
