#include "linalg/batch.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "linalg/batch_kernels.hpp"
#include "linalg/simd.hpp"
#include "resilience/solve_error.hpp"

namespace rascad::linalg {

namespace kernels {

const PanelOps& active_ops() {
  return simd::active_isa() == simd::Isa::kAvx2 ? avx2::ops : scalar::ops;
}

}  // namespace kernels

namespace {

Vector checked_diagonal(const CsrMatrix& a, const char* who) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument(std::string(who) + ": matrix must be square");
  }
  Vector d = a.diagonal();
  for (double x : d) {
    if (x == 0.0) {
      throw resilience::SolveError(resilience::SolveCause::kSingular, who,
                                   "zero diagonal entry");
    }
  }
  return d;
}

/// Lane-interleaves k equal-length vectors into an n x k panel.
AlignedVector<double> pack_panel(const std::vector<Vector>& vs,
                                 std::size_t n) {
  const std::size_t k = vs.size();
  AlignedVector<double> panel(n * k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) panel[i * k + j] = vs[j][i];
  }
  return panel;
}

void check_rhs(const std::vector<Vector>& bs, std::size_t n,
               const char* who) {
  for (const Vector& b : bs) {
    if (b.size() != n) {
      throw std::invalid_argument(std::string(who) + ": size mismatch");
    }
  }
}

Vector unpack_lane(const AlignedVector<double>& panel, std::size_t n,
                   std::size_t k, std::size_t j) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = panel[i * k + j];
  return v;
}

bool any_active(const std::vector<unsigned char>& active) {
  for (unsigned char a : active) {
    if (a) return true;
  }
  return false;
}

/// Same cooperative checkpoint as the scalar solvers: a stopped token
/// aborts the whole batch (all lanes share the iteration loop), throwing
/// with the iteration count reached.
inline void checkpoint(const IterativeOptions& opts, std::size_t it,
                       const char* who) {
  if (!opts.cancel.valid()) return;
  const std::size_t interval =
      opts.cancel_check_interval > 0 ? opts.cancel_check_interval : 1;
  if (it != 1 && it % interval != 0) return;
  robust::throw_if_stopped(opts.cancel, who, it - 1);
}

}  // namespace

std::optional<CsrBatch> CsrBatch::pack(
    const std::vector<const CsrMatrix*>& mats) {
  if (mats.empty() || mats.front() == nullptr) return std::nullopt;
  const CsrMatrix& first = *mats.front();
  for (std::size_t j = 1; j < mats.size(); ++j) {
    if (mats[j] == nullptr || !first.same_pattern(*mats[j])) {
      return std::nullopt;
    }
  }
  CsrBatch batch;
  batch.rows_ = first.rows();
  batch.cols_ = first.cols();
  batch.lanes_ = mats.size();
  batch.row_ptr_.assign(first.row_ptr_data(),
                        first.row_ptr_data() + first.rows() + 1);
  batch.col_idx_.assign(first.col_idx_data(),
                        first.col_idx_data() + first.nnz());
  const std::size_t nnz = first.nnz();
  const std::size_t k = batch.lanes_;
  batch.values_.resize(nnz * k);
  for (std::size_t j = 0; j < k; ++j) {
    const double* vals = mats[j]->values_data();
    for (std::size_t e = 0; e < nnz; ++e) {
      batch.values_[e * k + j] = vals[e];
    }
  }
  return batch;
}

std::vector<IterativeResult> jacobi_solve_batched(
    const CsrMatrix& a, const std::vector<Vector>& bs,
    const IterativeOptions& opts) {
  const Vector diag = checked_diagonal(a, "jacobi_solve");
  const std::size_t n = a.rows();
  const std::size_t k = bs.size();
  check_rhs(bs, n, "jacobi_solve");
  std::vector<IterativeResult> results(k);
  if (k == 0) return results;

  const kernels::PanelOps& ops = kernels::active_ops();
  const AlignedVector<double> b = pack_panel(bs, n);
  AlignedVector<double> x(n * k, 0.0);
  AlignedVector<double> next(n * k, 0.0);
  std::vector<unsigned char> active(k, 1);
  std::vector<double> change(k, 0.0);

  for (std::size_t it = 1; it <= opts.max_iterations && any_active(active);
       ++it) {
    checkpoint(opts, it, "jacobi_solve_batched");
    std::memset(change.data(), 0, k * sizeof(double));
    ops.jacobi_shared(n, k, a.row_ptr_data(), a.col_idx_data(),
                      a.values_data(), b.data(), diag.data(), active.data(),
                      x.data(), next.data(), change.data());
    x.swap(next);
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      results[j].iterations = it;
      results[j].residual = change[j];
      if (change[j] < opts.tolerance) {
        results[j].converged = true;
        active[j] = 0;
      }
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    results[j].solution = unpack_lane(x, n, k, j);
  }
  return results;
}

std::vector<IterativeResult> sor_solve_batched(
    const CsrMatrix& a, const std::vector<Vector>& bs,
    const IterativeOptions& opts) {
  const Vector diag = checked_diagonal(a, "sor_solve");
  const std::size_t n = a.rows();
  const std::size_t k = bs.size();
  check_rhs(bs, n, "sor_solve");
  std::vector<IterativeResult> results(k);
  if (k == 0) return results;

  const kernels::PanelOps& ops = kernels::active_ops();
  const AlignedVector<double> b = pack_panel(bs, n);
  AlignedVector<double> x(n * k, 0.0);
  AlignedVector<double> acc(k, 0.0);
  std::vector<unsigned char> active(k, 1);
  std::vector<double> change(k, 0.0);

  for (std::size_t it = 1; it <= opts.max_iterations && any_active(active);
       ++it) {
    checkpoint(opts, it, "sor_solve_batched");
    std::memset(change.data(), 0, k * sizeof(double));
    ops.sor_linear_shared(n, k, a.row_ptr_data(), a.col_idx_data(),
                          a.values_data(), b.data(), diag.data(),
                          opts.relaxation, active.data(), x.data(),
                          change.data(), acc.data());
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      results[j].iterations = it;
      results[j].residual = change[j];
      if (change[j] < opts.tolerance) {
        results[j].converged = true;
        active[j] = 0;
      }
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    results[j].solution = unpack_lane(x, n, k, j);
  }
  return results;
}

namespace {

/// Shared BiCGSTAB panel driver. When `multi_vals` is true, `vals` is a
/// lane-interleaved panel (nnz*k); otherwise one matrix shared by every
/// lane. Per lane, the operation sequence replicates bicgstab_solve
/// statement for statement; lanes leave the active flow exactly where the
/// scalar loop would `break`, and only x / result bookkeeping is masked —
/// auxiliary panels of finished lanes may keep drifting, which is
/// harmless because lanes never mix.
std::vector<IterativeResult> bicgstab_panel(
    std::size_t n, std::size_t k, const std::uint32_t* row_ptr,
    const std::uint32_t* cols, const double* vals, bool multi_vals,
    const AlignedVector<double>& b, const IterativeOptions& opts) {
  std::vector<IterativeResult> results(k);
  if (k == 0) return results;
  const kernels::PanelOps& ops = kernels::active_ops();
  const auto spmv = multi_vals ? ops.spmv_multi : ops.spmv_shared;

  AlignedVector<double> x(n * k, 0.0);
  AlignedVector<double> r(b);  // r = b - A*0
  AlignedVector<double> r_hat(b);
  AlignedVector<double> p(n * k, 0.0);
  AlignedVector<double> v(n * k, 0.0);
  AlignedVector<double> s(n * k, 0.0);
  AlignedVector<double> t(n * k, 0.0);
  std::vector<double> rho(k, 1.0);
  std::vector<double> alpha(k, 1.0);
  std::vector<double> omega(k, 1.0);
  std::vector<double> beta(k, 0.0);
  std::vector<double> rho_next(k, 0.0);
  std::vector<double> norm_acc(k, 0.0);
  std::vector<double> b_norm(k, 0.0);
  std::vector<unsigned char> done(k, 0);

  // b_norm[j] = max(norm2(b_j), 1e-300), the scalar scaling.
  for (std::size_t i = 0; i < n; ++i) {
    const double* bi = b.data() + i * k;
    for (std::size_t j = 0; j < k; ++j) norm_acc[j] += bi[j] * bi[j];
  }
  for (std::size_t j = 0; j < k; ++j) {
    b_norm[j] = std::max(std::sqrt(norm_acc[j]), 1e-300);
  }

  const auto panel_dot = [&](const AlignedVector<double>& u,
                             const AlignedVector<double>& w,
                             std::vector<double>& out) {
    std::memset(out.data(), 0, k * sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      const double* ui = u.data() + i * k;
      const double* wi = w.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) out[j] += ui[j] * wi[j];
    }
  };

  std::vector<double> rhv(k, 0.0);
  std::vector<double> tt(k, 0.0);
  std::vector<double> ts(k, 0.0);
  std::vector<unsigned char> live(k, 0);

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    bool any = false;
    for (std::size_t j = 0; j < k; ++j) {
      live[j] = !done[j];
      if (live[j]) any = true;
    }
    if (!any) break;
    checkpoint(opts, it, "bicgstab_solve_batched");

    panel_dot(r_hat, r, rho_next);
    for (std::size_t j = 0; j < k; ++j) {
      if (live[j] && std::abs(rho_next[j]) < 1e-300) {
        done[j] = 1;  // breakdown
        live[j] = 0;
      }
      beta[j] = (rho_next[j] / rho[j]) * (alpha[j] / omega[j]);
      rho[j] = rho_next[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      double* pi = p.data() + i * k;
      const double* ri = r.data() + i * k;
      const double* vi = v.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        pi[j] = ri[j] + beta[j] * (pi[j] - omega[j] * vi[j]);
      }
    }
    spmv(n, k, row_ptr, cols, vals, p.data(), v.data());
    panel_dot(r_hat, v, rhv);
    for (std::size_t j = 0; j < k; ++j) {
      if (live[j] && std::abs(rhv[j]) < 1e-300) {
        done[j] = 1;  // breakdown
        live[j] = 0;
      }
      alpha[j] = rho[j] / rhv[j];
    }
    // s = r - alpha v, then the mid-loop convergence test on ||s||.
    std::memset(norm_acc.data(), 0, k * sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      double* si = s.data() + i * k;
      const double* ri = r.data() + i * k;
      const double* vi = v.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        si[j] = ri[j] - alpha[j] * vi[j];
        norm_acc[j] += si[j] * si[j];
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (!live[j]) continue;
      const double s_rel = std::sqrt(norm_acc[j]) / b_norm[j];
      if (s_rel < opts.tolerance) {
        double* xs = x.data();
        const double* ps = p.data();
        for (std::size_t i = 0; i < n; ++i) {
          xs[i * k + j] += alpha[j] * ps[i * k + j];
        }
        results[j].iterations = it;
        results[j].residual = s_rel;
        results[j].converged = true;
        done[j] = 1;
        live[j] = 0;
      }
    }
    spmv(n, k, row_ptr, cols, vals, s.data(), t.data());
    panel_dot(t, t, tt);
    panel_dot(t, s, ts);
    for (std::size_t j = 0; j < k; ++j) {
      if (live[j] && tt[j] < 1e-300) {
        done[j] = 1;  // breakdown
        live[j] = 0;
      }
      omega[j] = ts[j] / tt[j];
    }
    // x += alpha p + omega s; r = s - omega t  (per-element order matches
    // the scalar axpy sequence).
    std::memset(norm_acc.data(), 0, k * sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      double* xi = x.data() + i * k;
      double* ri = r.data() + i * k;
      const double* pi = p.data() + i * k;
      const double* si = s.data() + i * k;
      const double* ti = t.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        if (live[j]) {
          xi[j] += alpha[j] * pi[j];
          xi[j] += omega[j] * si[j];
        }
        ri[j] = si[j] - omega[j] * ti[j];
        norm_acc[j] += ri[j] * ri[j];
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (!live[j]) continue;
      results[j].iterations = it;
      results[j].residual = std::sqrt(norm_acc[j]) / b_norm[j];
      if (!std::isfinite(results[j].residual)) {
        results[j].converged = false;
        done[j] = 1;
      } else if (results[j].residual < opts.tolerance) {
        results[j].converged = true;
        done[j] = 1;
      }
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    results[j].solution = unpack_lane(x, n, k, j);
  }
  return results;
}

}  // namespace

std::vector<IterativeResult> bicgstab_solve_batched(
    const CsrMatrix& a, const std::vector<Vector>& bs,
    const IterativeOptions& opts) {
  const std::size_t n = a.rows();
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("bicgstab_solve: size mismatch");
  }
  check_rhs(bs, n, "bicgstab_solve");
  const AlignedVector<double> b = pack_panel(bs, n);
  return bicgstab_panel(n, bs.size(), a.row_ptr_data(), a.col_idx_data(),
                        a.values_data(), /*multi_vals=*/false, b, opts);
}

std::vector<IterativeResult> bicgstab_solve_batched(
    const CsrBatch& batch, const std::vector<Vector>& bs,
    const IterativeOptions& opts) {
  if (batch.rows() != batch.cols()) {
    throw std::invalid_argument("bicgstab_solve: size mismatch");
  }
  if (bs.size() != batch.lanes()) {
    throw std::invalid_argument(
        "bicgstab_solve_batched: need one right-hand side per lane");
  }
  check_rhs(bs, batch.rows(), "bicgstab_solve");
  const AlignedVector<double> b = pack_panel(bs, batch.rows());
  return bicgstab_panel(batch.rows(), batch.lanes(), batch.row_ptr_data(),
                        batch.col_idx_data(), batch.values_data(),
                        /*multi_vals=*/true, b, opts);
}

}  // namespace rascad::linalg
