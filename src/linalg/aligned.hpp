// 64-byte-aligned storage for the SoA numerical core.
//
// The CSR arrays (row pointers, column indices, values) and the batched
// solve panels are held in AlignedVector so the SIMD kernels can assume
// cache-line-aligned bases. Alignment is a performance property only:
// every kernel uses unaligned loads, so a plain std::vector would still be
// correct — which is what keeps the scalar fallback trivially testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace rascad::linalg {

inline constexpr std::size_t kSimdAlignment = 64;

template <typename T, std::size_t Alignment = kSimdAlignment>
struct AlignedAllocator {
  using value_type = T;

  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment must satisfy the type");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    const std::size_t bytes = n * sizeof(T);
    void* p = ::operator new(bytes, std::align_val_t{Alignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True iff `p` sits on a `kSimdAlignment` boundary (used by tests).
inline bool is_simd_aligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) % kSimdAlignment) == 0;
}

}  // namespace rascad::linalg
