// Iterative linear and eigen solvers for sparse systems.
//
// Large generated chains (high redundancy depth, deep hierarchies) are
// solved with Gauss-Seidel / SOR sweeps or power iteration rather than a
// dense factorization. All solvers report convergence diagnostics instead
// of failing silently.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "robust/cancel.hpp"

namespace rascad::linalg {

struct IterativeOptions {
  double tolerance = 1e-12;      // infinity-norm change / residual threshold
  std::size_t max_iterations = 200'000;
  double relaxation = 1.0;       // SOR omega; 1.0 == plain Gauss-Seidel
  /// Cooperative stop: checked every cancel_check_interval iterations at
  /// the top of the solver loop. A stopped token throws
  /// SolveError(kCancelled / kDeadlineExceeded) carrying the iteration
  /// count reached. Checkpoints never change arithmetic — an uncancelled
  /// run is bitwise identical to one without a token (default token is
  /// inert and costs one branch per check).
  robust::CancelToken cancel;
  std::size_t cancel_check_interval = 64;
};

struct IterativeResult {
  Vector solution;
  std::size_t iterations = 0;
  double residual = 0.0;  // final convergence metric
  bool converged = false;
};

/// Solves A x = b with Jacobi iteration. Requires a nonzero diagonal;
/// throws resilience::SolveError(kSingular) otherwise (historically
/// std::domain_error).
IterativeResult jacobi_solve(const CsrMatrix& a, const Vector& b,
                             const IterativeOptions& opts = {});

/// Solves A x = b with Gauss-Seidel / SOR (opts.relaxation = omega).
/// Requires a nonzero diagonal; throws resilience::SolveError(kSingular)
/// otherwise (historically std::domain_error).
IterativeResult sor_solve(const CsrMatrix& a, const Vector& b,
                          const IterativeOptions& opts = {});

/// Solves A x = b with BiCGSTAB (no preconditioner). Suitable for the
/// nonsymmetric singular-shifted systems arising from CTMC analysis.
IterativeResult bicgstab_solve(const CsrMatrix& a, const Vector& b,
                               const IterativeOptions& opts = {});

/// Stationary distribution of a row-stochastic matrix P (pi = pi P) by
/// power iteration on the transpose. `start` defaults to uniform.
IterativeResult power_stationary(const CsrMatrix& p,
                                 const IterativeOptions& opts = {},
                                 std::optional<Vector> start = std::nullopt);

// ---------------------------------------------------------------------------
// Batched multi-RHS solves: k right-hand sides swept through one traversal
// of the matrix per iteration (lane-interleaved panels; see
// linalg/batch.hpp and docs/numerics.md). Element bs[j] is the j-th
// right-hand side; entry j of the returned vector is bitwise identical —
// solution, iteration count, residual, convergence flag — to calling the
// scalar solver on (a, bs[j]) alone. Columns that converge (or break
// down) early are frozen while the remaining columns continue iterating.
// Error semantics (zero diagonal, size mismatch) match the scalar
// functions.
// ---------------------------------------------------------------------------

std::vector<IterativeResult> jacobi_solve_batched(
    const CsrMatrix& a, const std::vector<Vector>& bs,
    const IterativeOptions& opts = {});

std::vector<IterativeResult> sor_solve_batched(
    const CsrMatrix& a, const std::vector<Vector>& bs,
    const IterativeOptions& opts = {});

std::vector<IterativeResult> bicgstab_solve_batched(
    const CsrMatrix& a, const std::vector<Vector>& bs,
    const IterativeOptions& opts = {});

}  // namespace rascad::linalg
