// Baseline-ISA instantiation of the batched panel kernels. Always
// compiled; this is the scalar fallback every other path is tested
// against.
#include "linalg/batch_kernels.hpp"

#define RASCAD_KERNEL_NS scalar
#include "linalg/batch_kernels.inl"
#undef RASCAD_KERNEL_NS
