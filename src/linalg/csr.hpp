// Compressed sparse row (CSR) matrix — the canonical sparse format of the
// numerical core.
//
// Generated Markov chains are sparse (a handful of outgoing arcs per
// state), so the iterative steady-state solvers, the uniformization
// transient solver, and the batched multi-RHS kernels all operate on CSR.
// Storage is structure-of-arrays: three flat, 64-byte-aligned arrays
// (row pointers, column indices, values) with 32-bit indices, which halves
// index bandwidth and lets the SIMD kernels gather columns with one vector
// load. Matrices are assembled through CsrBuilder, which stages triplets
// and builds via an arena-backed counting sort (see docs/numerics.md);
// duplicates are summed in insertion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "linalg/aligned.hpp"
#include "linalg/dense.hpp"

namespace rascad::linalg {

class Arena;
class CsrMatrix;

/// Accumulates (row, col, value) triplets; duplicates are summed.
/// Staging is structure-of-arrays; build() runs a stable two-pass counting
/// sort whose scratch comes from the per-thread assembly arena, so chain
/// generation emits CSR directly with no allocation churn.
class CsrBuilder {
 public:
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Adds value at (r, c). Throws std::out_of_range for bad indices.
  void add(std::size_t r, std::size_t c, double value);

  /// Pre-sizes the staging arrays for an expected entry count.
  void reserve(std::size_t nnz);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  CsrMatrix build() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  // SoA triplet staging (parallel arrays).
  std::vector<std::uint32_t> t_rows_;
  std::vector<std::uint32_t> t_cols_;
  std::vector<double> t_vals_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A * x. Throws std::invalid_argument on shape mismatch.
  /// Scalar row-major accumulation — the bitwise-stable reference path;
  /// the runtime-dispatched SIMD variant lives in linalg/simd.hpp.
  Vector mul(const Vector& x) const;

  /// y = A^T * x. Throws std::invalid_argument on shape mismatch.
  Vector mul_transpose(const Vector& x) const;

  /// Element lookup (binary search within the row); absent entries are 0.
  double at(std::size_t r, std::size_t c) const;

  /// Vector of the diagonal entries (length min(rows, cols)).
  Vector diagonal() const;

  /// Maximum absolute diagonal entry — the uniformization rate bound for a
  /// generator matrix.
  double max_abs_diagonal() const noexcept;

  CsrMatrix transposed() const;
  DenseMatrix to_dense() const;

  /// Row iteration support: columns/values of row r as parallel spans.
  struct RowView {
    const std::uint32_t* cols;
    const double* values;
    std::size_t size;
  };
  RowView row(std::size_t r) const noexcept {
    return {col_idx_.data() + row_ptr_[r], values_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Sum of each row's entries (for generator-matrix conservation checks).
  Vector row_sums() const;

  /// Raw SoA views for the SIMD / batched kernels. row_ptr has rows()+1
  /// entries; col_idx and values have nnz() entries, 64-byte aligned.
  const std::uint32_t* row_ptr_data() const noexcept {
    return row_ptr_.data();
  }
  const std::uint32_t* col_idx_data() const noexcept {
    return col_idx_.data();
  }
  const double* values_data() const noexcept { return values_.data(); }

  /// True iff `other` has identical shape and sparsity pattern (row
  /// pointers and column indices) — the precondition for batching several
  /// matrices through one traversal.
  bool same_pattern(const CsrMatrix& other) const noexcept;

 private:
  friend class CsrBuilder;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector<std::uint32_t> row_ptr_;  // rows_ + 1 entries
  AlignedVector<std::uint32_t> col_idx_;  // nnz entries
  AlignedVector<double> values_;          // nnz entries
};

std::ostream& operator<<(std::ostream& os, const CsrMatrix& m);

}  // namespace rascad::linalg
