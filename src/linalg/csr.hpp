// Compressed sparse row (CSR) matrix.
//
// Generated Markov chains are sparse (a handful of outgoing arcs per state),
// so the iterative steady-state solvers and the uniformization transient
// solver operate on CSR. Matrices are assembled through CsrBuilder, which
// accumulates coordinate triplets and merges duplicates on build.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "linalg/dense.hpp"

namespace rascad::linalg {

class CsrMatrix;

/// Accumulates (row, col, value) triplets; duplicates are summed.
class CsrBuilder {
 public:
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Adds value at (r, c). Throws std::out_of_range for bad indices.
  void add(std::size_t r, std::size_t c, double value);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  CsrMatrix build() const;

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A * x. Throws std::invalid_argument on shape mismatch.
  Vector mul(const Vector& x) const;

  /// y = A^T * x. Throws std::invalid_argument on shape mismatch.
  Vector mul_transpose(const Vector& x) const;

  /// Element lookup (binary search within the row); absent entries are 0.
  double at(std::size_t r, std::size_t c) const;

  /// Vector of the diagonal entries (length min(rows, cols)).
  Vector diagonal() const;

  /// Maximum absolute diagonal entry — the uniformization rate bound for a
  /// generator matrix.
  double max_abs_diagonal() const noexcept;

  CsrMatrix transposed() const;
  DenseMatrix to_dense() const;

  /// Row iteration support: columns/values of row r as parallel spans.
  struct RowView {
    const std::size_t* cols;
    const double* values;
    std::size_t size;
  };
  RowView row(std::size_t r) const noexcept {
    return {col_idx_.data() + row_ptr_[r], values_.data() + row_ptr_[r],
            row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Sum of each row's entries (for generator-matrix conservation checks).
  Vector row_sums() const;

 private:
  friend class CsrBuilder;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // rows_ + 1 entries
  std::vector<std::size_t> col_idx_;  // nnz entries
  std::vector<double> values_;        // nnz entries
};

std::ostream& operator<<(std::ostream& os, const CsrMatrix& m);

}  // namespace rascad::linalg
