// Runtime-dispatched SIMD kernels over CSR matrices.
//
// Dispatch policy (see docs/numerics.md):
//  - The scalar path is always compiled and always selectable — it is the
//    bitwise reference every other path is tested against.
//  - The AVX2 path is selected at runtime iff the CPU reports AVX2 and the
//    environment does not veto it: RASCAD_SIMD=0 (or "scalar"/"off")
//    forces the scalar path process-wide.
//  - force_isa() overrides both for tests and benches.
//
// Numerical contract: the AVX2 single-vector SpMV accumulates each row in
// four partial sums (plus FMA), so its result differs from the scalar path
// by reassociation round-off only — within a few ULPs per row, bounded by
// nnz_row * eps * ||row||*||x||. Callers that require bitwise stability
// (the memoized solve paths) use CsrMatrix::mul instead; the batched
// kernels in batch_kernels.hpp vectorize across lanes and ARE bitwise
// equal to scalar execution.
#pragma once

#include <optional>

#include "linalg/csr.hpp"
#include "linalg/dense.hpp"

namespace rascad::linalg::simd {

enum class Isa {
  kScalar,
  kAvx2,
};

inline const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
  }
  return "unknown";
}

/// The instruction set the dispatched kernels will use right now:
/// force_isa() override if set, else the RASCAD_SIMD environment policy
/// (read once per process) applied to what the CPU supports.
Isa active_isa() noexcept;

/// True iff this build/CPU can run the AVX2 path at all.
bool avx2_supported() noexcept;

/// Test/bench hook: pin the dispatched ISA (nullopt restores the default
/// policy). Forcing kAvx2 on a CPU without AVX2 is ignored.
void force_isa(std::optional<Isa> isa) noexcept;

/// y = A x through the dispatched kernel. `x` must have a.cols() entries,
/// `y` a.rows() entries; x and y must not alias.
void spmv(const CsrMatrix& a, const double* x, double* y);

/// Convenience overload; throws std::invalid_argument on shape mismatch.
Vector spmv(const CsrMatrix& a, const Vector& x);

}  // namespace rascad::linalg::simd
