// Kernel bodies shared by batch_kernels_scalar.cpp (baseline ISA) and
// batch_kernels_avx2.cpp (-mavx2). RASCAD_KERNEL_NS selects the namespace.
//
// Every inner loop runs over lanes j (vertical form): per lane, the
// floating-point operation sequence is exactly the scalar solver's, so the
// compiler may vectorize across lanes at any width without changing a
// single bit of any lane's result. Do NOT introduce FMA, reductions across
// j, or reordering of the per-edge accumulation here — bitwise equality
// with the scalar solvers is a tested contract.

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace rascad::linalg::kernels::RASCAD_KERNEL_NS {

namespace {

inline bool lane_on(const unsigned char* active, std::size_t j) {
  return active == nullptr || active[j] != 0;
}

}  // namespace

void spmv_shared(std::size_t n, std::size_t k, const std::uint32_t* row_ptr,
                 const std::uint32_t* cols, const double* vals,
                 const double* x, double* y) {
  for (std::size_t r = 0; r < n; ++r) {
    double* yr = y + r * k;
    for (std::size_t j = 0; j < k; ++j) yr[j] = 0.0;
    for (std::uint32_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const double v = vals[e];
      const double* xc = x + static_cast<std::size_t>(cols[e]) * k;
      for (std::size_t j = 0; j < k; ++j) yr[j] += v * xc[j];
    }
  }
}

void spmv_multi(std::size_t n, std::size_t k, const std::uint32_t* row_ptr,
                const std::uint32_t* cols, const double* vals,
                const double* x, double* y) {
  for (std::size_t r = 0; r < n; ++r) {
    double* yr = y + r * k;
    for (std::size_t j = 0; j < k; ++j) yr[j] = 0.0;
    for (std::uint32_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const double* ve = vals + static_cast<std::size_t>(e) * k;
      const double* xc = x + static_cast<std::size_t>(cols[e]) * k;
      for (std::size_t j = 0; j < k; ++j) yr[j] += ve[j] * xc[j];
    }
  }
}

void sor_linear_shared(std::size_t n, std::size_t k,
                       const std::uint32_t* row_ptr, const std::uint32_t* cols,
                       const double* vals, const double* b, const double* diag,
                       double omega, const unsigned char* active, double* x,
                       double* change, double* acc) {
  for (std::size_t r = 0; r < n; ++r) {
    const double* br = b + r * k;
    for (std::size_t j = 0; j < k; ++j) acc[j] = br[j];
    for (std::uint32_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const std::size_t c = cols[e];
      if (c == r) continue;
      const double v = vals[e];
      const double* xc = x + c * k;
      for (std::size_t j = 0; j < k; ++j) acc[j] -= v * xc[j];
    }
    const double dg = diag[r];
    double* xr = x + r * k;
    for (std::size_t j = 0; j < k; ++j) {
      const double prev = xr[j];
      const double gs = acc[j] / dg;
      const double updated = prev + omega * (gs - prev);
      const double delta = std::abs(updated - prev);
      if (lane_on(active, j)) {
        xr[j] = updated;
        if (delta > change[j]) change[j] = delta;
      }
    }
  }
}

void jacobi_shared(std::size_t n, std::size_t k, const std::uint32_t* row_ptr,
                   const std::uint32_t* cols, const double* vals,
                   const double* b, const double* diag,
                   const unsigned char* active, const double* x, double* next,
                   double* change) {
  for (std::size_t r = 0; r < n; ++r) {
    const double* br = b + r * k;
    double* nr = next + r * k;
    for (std::size_t j = 0; j < k; ++j) nr[j] = br[j];
    for (std::uint32_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const std::size_t c = cols[e];
      if (c == r) continue;
      const double v = vals[e];
      const double* xc = x + c * k;
      for (std::size_t j = 0; j < k; ++j) nr[j] -= v * xc[j];
    }
    const double dg = diag[r];
    const double* xr = x + r * k;
    for (std::size_t j = 0; j < k; ++j) {
      const double updated = nr[j] / dg;
      const bool on = lane_on(active, j);
      nr[j] = on ? updated : xr[j];
      const double delta = std::abs(updated - xr[j]);
      if (on && delta > change[j]) change[j] = delta;
    }
  }
}

void sor_stationary_multi(std::size_t n, std::size_t k,
                          const std::uint32_t* row_ptr,
                          const std::uint32_t* cols, const double* vals,
                          const double* diag, double omega,
                          const unsigned char* active, double* x,
                          double* change, double* acc) {
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < k; ++j) acc[j] = 0.0;
    for (std::uint32_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const std::size_t c = cols[e];
      if (c == r) continue;
      const double* ve = vals + static_cast<std::size_t>(e) * k;
      const double* xc = x + c * k;
      for (std::size_t j = 0; j < k; ++j) acc[j] += ve[j] * xc[j];
    }
    const double* dr = diag + r * k;
    double* xr = x + r * k;
    for (std::size_t j = 0; j < k; ++j) {
      const double prev = xr[j];
      const double gs = acc[j] / dr[j];
      const double updated = prev + omega * (gs - prev);
      const double delta = std::abs(updated - prev);
      if (lane_on(active, j)) {
        xr[j] = updated;
        if (delta > change[j]) change[j] = delta;
      }
    }
  }
}

const PanelOps ops = {
    &spmv_shared, &spmv_multi, &sor_linear_shared, &jacobi_shared,
    &sor_stationary_multi,
};

}  // namespace rascad::linalg::kernels::RASCAD_KERNEL_NS
