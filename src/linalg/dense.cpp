#include "linalg/dense.hpp"

#include <cmath>
#include <numeric>
#include <ostream>

namespace rascad::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("DenseMatrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& DenseMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("DenseMatrix::at: index out of range");
  }
  return (*this)(r, c);
}

double DenseMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("DenseMatrix::at: index out of range");
  }
  return (*this)(r, c);
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

DenseMatrix& DenseMatrix::operator+=(const DenseMatrix& rhs) {
  if (!same_shape(rhs)) {
    throw std::invalid_argument("DenseMatrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

DenseMatrix& DenseMatrix::operator-=(const DenseMatrix& rhs) {
  if (!same_shape(rhs)) {
    throw std::invalid_argument("DenseMatrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

DenseMatrix& DenseMatrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("DenseMatrix::operator*: shape mismatch");
  }
  DenseMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row_data(k);
      double* crow = c.row_data(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

std::ostream& operator<<(std::ostream& os, const DenseMatrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << (c ? ", " : "") << m(r, c);
    }
    os << "]\n";
  }
  return os;
}

Vector mat_vec(const DenseMatrix& a, const Vector& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("mat_vec: shape mismatch");
  }
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector mat_transpose_vec(const DenseMatrix& a, const Vector& x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("mat_transpose_vec: shape mismatch");
  }
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

double norm1(const Vector& v) noexcept {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double norm2(const Vector& v) noexcept {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(const Vector& v) noexcept {
  double s = 0.0;
  for (double x : v) s = std::max(s, std::abs(x));
  return s;
}

double sum(const Vector& v) noexcept {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

void axpy(double alpha, const Vector& w, Vector& v) {
  if (v.size() != w.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += alpha * w[i];
}

void scale(Vector& v, double alpha) noexcept {
  for (double& x : v) x *= alpha;
}

void normalize_sum(Vector& v) {
  const double s = sum(v);
  if (!(s > 0.0)) {
    throw std::domain_error("normalize_sum: vector sum is not positive");
  }
  scale(v, 1.0 / s);
}

double max_abs_diff(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace rascad::linalg
