// Stall watchdog: flags solves that fail to observe their cancel token.
//
// Cancellation here is cooperative — a stop request only takes effect when
// the running code reaches a checkpoint. A solver stuck inside a kernel
// (or an injected kStall fault) never reaches one, and the request appears
// to hang. The watchdog makes that visible: register a token with a
// latency budget, and a single background thread polls registered tokens;
// any token that has stopped but remains unobserved past its budget is
// flagged once — robust.stalled counter plus a robust.stall trace event
// naming the work.
//
// The watchdog polls with stop_requested_silent(), so its own monitoring
// never counts as the workload observing the stop.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "robust/cancel.hpp"

namespace rascad::robust {

class StallWatchdog {
 public:
  /// Process-wide instance; the poll thread starts lazily on first watch.
  static StallWatchdog& global();

  /// RAII registration: watches `token` until the guard is destroyed.
  /// If the token stops and remains unobserved for more than `budget_ms`,
  /// the stall is flagged (once per registration).
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept;
    Guard& operator=(Guard&& other) noexcept;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard();

   private:
    friend class StallWatchdog;
    Guard(StallWatchdog* owner, std::uint64_t id);
    StallWatchdog* owner_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Registers `token` for monitoring. `what` names the work in the stall
  /// event. Inert tokens return an inactive guard.
  Guard watch(const CancelToken& token, double budget_ms,
              std::string what);

  /// Stalls flagged since process start (mirrors the robust.stalled
  /// counter without requiring a metrics snapshot).
  std::uint64_t stall_count() const;

  /// Poll scans performed over non-empty entry lists. With no registered
  /// guards the poll thread parks on the condition variable instead of
  /// spinning, so this number stops growing — the property the idle-park
  /// regression test pins down.
  std::uint64_t scan_count() const;

  /// Poll period; tests shrink it to keep stall budgets small.
  void set_poll_interval_ms(double ms);

  ~StallWatchdog();

 private:
  StallWatchdog() = default;
  void unwatch(std::uint64_t id);
  void loop();
  void flag(const std::string& what, double unobserved_ms);

  struct Entry {
    std::uint64_t id = 0;
    CancelToken token;
    double budget_ms = 0.0;
    std::string what;
    bool flagged = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::thread thread_;
  bool running_ = false;
  bool shutdown_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t stalls_ = 0;
  std::uint64_t scans_ = 0;
  double poll_ms_ = 2.0;
};

}  // namespace rascad::robust
