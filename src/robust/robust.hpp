// Obs-integrated half of the robustness layer.
//
// cancel.hpp is header-only and dependency-free so the low layers can poll
// tokens; everything that talks to the metrics registry lives here, in
// rascad_robust (links rascad_obs):
//
//   * record_stop(token, site) — called once per stopped episode by the
//     layer that owns the token (the resilience ladder, a degraded sweep).
//     Bumps robust.cancelled / robust.deadline_exceeded and, when a
//     checkpoint observed the stop, feeds robust.cancel_latency_ms.
//   * StallWatchdog (watchdog.hpp) — flags solves that fail to observe
//     their token within a budget.
#pragma once

#include "robust/cancel.hpp"

namespace rascad::robust {

/// Records a stopped token's outcome in the global metrics registry:
/// robust.cancelled or robust.deadline_exceeded (by reason), and the
/// robust.cancel_latency_ms histogram when a checkpoint observed the stop.
/// `site` tags a robust.stop event in the trace buffer (e.g. "ladder",
/// "sweep"). No-op for tokens that have not stopped.
void record_stop(const CancelToken& token, const char* site);

}  // namespace rascad::robust
