// Cooperative cancellation and deadlines for the whole solve stack.
//
// A CancelToken is a copyable handle onto shared atomic stop state. Work
// loops poll stop_requested() at checkpoints (every N iterations in the
// linalg solvers, between rungs in the resilience ladder, between chunks in
// exec::parallel_for) and throw SolveError(kCancelled / kDeadlineExceeded)
// when it fires. Three properties the stack relies on:
//
//  * Inert by default. A default-constructed token holds no state; every
//    checkpoint is a single null-pointer test, so code paths that never
//    asked for cancellation keep their exact pre-token cost and results.
//  * Monotonic-clock deadlines. Expiry is evaluated lazily against
//    steady_clock at the checkpoints themselves — no timer thread, immune
//    to wall-clock jumps.
//  * Parent -> child linking. A request token fans out to per-phase /
//    per-rung children (optionally with their own tighter deadline); a
//    child observes its parent's stop but never stops the parent, so a
//    rung budget can expire without killing the request.
//
// Checkpoints only ever *throw*; they never alter arithmetic. A run that is
// not cancelled is therefore bitwise identical to a run with no token at
// all (the contract bench_robust enforces).
//
// This header is deliberately header-only with no dependencies beyond the
// standard library and the (equally header-only) solve_error taxonomy, so
// rascad_linalg can poll tokens without linking against any higher layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "resilience/solve_error.hpp"

namespace rascad::robust {

/// Why a token stopped.
enum class StopReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,         // explicit request_cancel()
  kDeadlineExceeded = 2,  // monotonic deadline passed
};

inline const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

/// SolveError cause corresponding to a stop reason (kNone maps to
/// kCancelled so callers can throw unconditionally once stopped).
inline resilience::SolveCause cause_from(StopReason reason) {
  return reason == StopReason::kDeadlineExceeded
             ? resilience::SolveCause::kDeadlineExceeded
             : resilience::SolveCause::kCancelled;
}

namespace detail {

struct CancelState {
  using Clock = std::chrono::steady_clock;

  /// StopReason, sticky once nonzero.
  std::atomic<std::uint8_t> reason{0};
  /// Clock::now().time_since_epoch() in ns when the stop was first
  /// detected (deadline) or requested (cancel). 0 = not stopped.
  std::atomic<std::int64_t> stop_ns{0};
  /// First time a checkpoint *observed* the stop, same encoding. The gap
  /// stop_ns -> observed_ns is the cancellation latency the watchdog and
  /// bench_robust report. 0 = not yet observed.
  std::atomic<std::int64_t> observed_ns{0};

  bool has_deadline = false;
  Clock::time_point deadline{};
  std::shared_ptr<CancelState> parent;

  static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  /// Latches `r` as the stop reason; only the first trigger records
  /// stop_ns, so latency is measured from the earliest stop event.
  void trigger(StopReason r) noexcept {
    std::uint8_t expected = 0;
    if (reason.compare_exchange_strong(expected, static_cast<std::uint8_t>(r),
                                       std::memory_order_acq_rel)) {
      stop_ns.store(now_ns(), std::memory_order_release);
    }
  }

  void note_observed() noexcept {
    std::int64_t expected = 0;
    observed_ns.compare_exchange_strong(expected, now_ns(),
                                        std::memory_order_acq_rel);
  }

  /// Checks own flag, then own deadline, then the parent chain. When
  /// `observe` is true the first positive check stamps observed_ns (on
  /// this state and, transitively, on the ancestor that stopped). The
  /// watchdog polls with observe=false so its monitoring never counts as
  /// the workload noticing.
  bool stopped(bool observe) noexcept {
    std::uint8_t r = reason.load(std::memory_order_acquire);
    if (r == 0) {
      if (has_deadline && Clock::now() >= deadline) {
        trigger(StopReason::kDeadlineExceeded);
        r = reason.load(std::memory_order_acquire);
      } else if (parent && parent->stopped(observe)) {
        trigger(static_cast<StopReason>(
            parent->reason.load(std::memory_order_acquire)));
        r = reason.load(std::memory_order_acquire);
      }
    }
    if (r != 0 && observe) note_observed();
    return r != 0;
  }
};

}  // namespace detail

/// Copyable cooperative-stop handle. See the file comment for the model.
class CancelToken {
 public:
  /// Inert token: valid() is false, stop_requested() is always false and
  /// costs one branch.
  CancelToken() = default;

  /// A token that stops only via request_cancel().
  static CancelToken manual() {
    return CancelToken(std::make_shared<detail::CancelState>());
  }

  /// A token that stops when `deadline_ms` (> 0) of steady-clock time has
  /// passed, measured from now.
  static CancelToken with_deadline_ms(double deadline_ms) {
    auto state = std::make_shared<detail::CancelState>();
    state->has_deadline = true;
    state->deadline = detail::CancelState::Clock::now() +
                      std::chrono::duration_cast<
                          detail::CancelState::Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              deadline_ms));
    return CancelToken(std::move(state));
  }

  /// A child observing `parent`'s stop (one-way: stopping the child never
  /// stops the parent). An inert parent yields a plain manual token.
  static CancelToken child_of(const CancelToken& parent) {
    auto state = std::make_shared<detail::CancelState>();
    state->parent = parent.state_;
    return CancelToken(std::move(state));
  }

  /// Child with its own deadline `deadline_ms` from now — the shape of a
  /// per-rung budget charged against the request token.
  static CancelToken child_of(const CancelToken& parent, double deadline_ms) {
    CancelToken child = with_deadline_ms(deadline_ms);
    child.state_->parent = parent.state_;
    return child;
  }

  bool valid() const noexcept { return state_ != nullptr; }

  /// The cooperative checkpoint. Marks the stop as observed (for latency
  /// accounting) the first time it returns true.
  bool stop_requested() const noexcept {
    return state_ != nullptr && state_->stopped(/*observe=*/true);
  }

  /// stop_requested without the observed-latency stamp; used by monitors
  /// (the stall watchdog) that must not count as the workload noticing.
  bool stop_requested_silent() const noexcept {
    return state_ != nullptr && state_->stopped(/*observe=*/false);
  }

  void request_cancel() const noexcept {
    if (state_) state_->trigger(StopReason::kCancelled);
  }

  /// Reason as of the last stop check (does not itself probe the clock or
  /// parents; call stop_requested first for a fresh answer).
  StopReason reason() const noexcept {
    return state_ ? static_cast<StopReason>(
                        state_->reason.load(std::memory_order_acquire))
                  : StopReason::kNone;
  }

  bool observed() const noexcept {
    return state_ != nullptr &&
           state_->observed_ns.load(std::memory_order_acquire) != 0;
  }

  /// Milliseconds between the stop firing and the first checkpoint that
  /// observed it; negative when not stopped or not yet observed.
  double observed_latency_ms() const noexcept {
    if (!state_) return -1.0;
    const std::int64_t stop = state_->stop_ns.load(std::memory_order_acquire);
    const std::int64_t seen =
        state_->observed_ns.load(std::memory_order_acquire);
    if (stop == 0 || seen == 0) return -1.0;
    return static_cast<double>(seen - stop) * 1e-6;
  }

  /// Milliseconds since the stop fired (against now); -1 when not stopped.
  double ms_since_stop() const noexcept {
    if (!state_) return -1.0;
    const std::int64_t stop = state_->stop_ns.load(std::memory_order_acquire);
    if (stop == 0) return -1.0;
    return static_cast<double>(detail::CancelState::now_ns() - stop) * 1e-6;
  }

  friend bool operator==(const CancelToken& a, const CancelToken& b) {
    return a.state_ == b.state_;
  }

 private:
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Checkpoint helper: throws SolveError(kCancelled / kDeadlineExceeded) in
/// `who`'s name if the token has stopped.
inline void throw_if_stopped(const CancelToken& token, const char* who,
                             std::size_t iterations = 0,
                             double residual = 0.0) {
  if (!token.stop_requested()) return;
  const StopReason reason = token.reason();
  throw resilience::SolveError(
      cause_from(reason), who,
      std::string("cooperative stop (") + to_string(reason) + ")", iterations,
      residual);
}

/// Outcome of one unit of degradable work (a sweep point, a batch-rebuild
/// point, a replication run). kOk entries carry results; the rest carry a
/// reason and, for kFailed, the failure detail/trace.
enum class PointStatus : std::uint8_t {
  kOk = 0,
  kCancelled = 1,
  kDeadlineExceeded = 2,
  kFailed = 3,
};

inline const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kCancelled: return "cancelled";
    case PointStatus::kDeadlineExceeded: return "deadline-exceeded";
    case PointStatus::kFailed: return "failed";
  }
  return "unknown";
}

/// Parses the to_string form back; false on unknown text (CSV round-trip).
inline bool point_status_from_string(const std::string& s,
                                     PointStatus& out) {
  if (s == "ok") { out = PointStatus::kOk; return true; }
  if (s == "cancelled") { out = PointStatus::kCancelled; return true; }
  if (s == "deadline-exceeded") {
    out = PointStatus::kDeadlineExceeded;
    return true;
  }
  if (s == "failed") { out = PointStatus::kFailed; return true; }
  return false;
}

inline PointStatus point_status_from(StopReason reason) {
  switch (reason) {
    case StopReason::kDeadlineExceeded: return PointStatus::kDeadlineExceeded;
    case StopReason::kCancelled: return PointStatus::kCancelled;
    case StopReason::kNone: break;
  }
  return PointStatus::kCancelled;
}

inline PointStatus point_status_from(resilience::SolveCause cause) {
  switch (cause) {
    case resilience::SolveCause::kCancelled: return PointStatus::kCancelled;
    case resilience::SolveCause::kDeadlineExceeded:
      return PointStatus::kDeadlineExceeded;
    default: return PointStatus::kFailed;
  }
}

/// Folds a caught exception into a degradation (status, detail) pair:
/// SolveError keeps its cancellation taxonomy, anything else is kFailed
/// with the error text as provenance. The shared classifier behind every
/// graceful-degradation surface (batched rebuilds, sweeps, importance,
/// simulator replications).
inline std::pair<PointStatus, std::string> point_status_from_exception(
    std::exception_ptr err) {
  try {
    std::rethrow_exception(err);
  } catch (const resilience::SolveError& e) {
    return {point_status_from(e.cause()), e.what()};
  } catch (const std::exception& e) {
    return {PointStatus::kFailed, e.what()};
  } catch (...) {
    return {PointStatus::kFailed, "unknown error"};
  }
}

}  // namespace rascad::robust
