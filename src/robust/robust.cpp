#include "robust/robust.hpp"

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rascad::robust {

void record_stop(const CancelToken& token, const char* site) {
  const StopReason reason = token.reason();
  if (reason == StopReason::kNone) return;
  auto& registry = obs::Registry::global();
  static obs::Counter& cancelled = registry.counter("robust.cancelled");
  static obs::Counter& deadline =
      registry.counter("robust.deadline_exceeded");
  static obs::Histogram& latency =
      registry.histogram("robust.cancel_latency_ms");
  (reason == StopReason::kDeadlineExceeded ? deadline : cancelled).inc();
  const double observed_ms = token.observed_latency_ms();
  if (observed_ms >= 0.0) latency.observe_ms(observed_ms);
  obs::emit_event("robust.stop",
                  {{"site", site},
                   {"reason", to_string(reason)},
                   {"latency_ms", std::to_string(observed_ms)}});
}

}  // namespace rascad::robust
