#include "robust/watchdog.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rascad::robust {

StallWatchdog& StallWatchdog::global() {
  // Meyers singleton: constructed after the (leaked) obs registry, so the
  // destructor — which joins the poll thread — runs while metrics are
  // still safe to touch.
  static StallWatchdog instance;
  return instance;
}

StallWatchdog::Guard::Guard(StallWatchdog* owner, std::uint64_t id)
    : owner_(owner), id_(id) {}

StallWatchdog::Guard::Guard(Guard&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      id_(std::exchange(other.id_, 0)) {}

StallWatchdog::Guard& StallWatchdog::Guard::operator=(Guard&& other) noexcept {
  if (this != &other) {
    if (owner_ != nullptr) owner_->unwatch(id_);
    owner_ = std::exchange(other.owner_, nullptr);
    id_ = std::exchange(other.id_, 0);
  }
  return *this;
}

StallWatchdog::Guard::~Guard() {
  if (owner_ != nullptr) owner_->unwatch(id_);
}

StallWatchdog::Guard StallWatchdog::watch(const CancelToken& token,
                                          double budget_ms,
                                          std::string what) {
  if (!token.valid()) return Guard();
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    Entry entry;
    entry.id = id;
    entry.token = token;
    entry.budget_ms = budget_ms;
    entry.what = std::move(what);
    entries_.push_back(std::move(entry));
    if (!running_) {
      running_ = true;
      thread_ = std::thread([this] { loop(); });
    }
  }
  cv_.notify_all();
  return Guard(this, id);
}

void StallWatchdog::unwatch(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

std::uint64_t StallWatchdog::stall_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stalls_;
}

std::uint64_t StallWatchdog::scan_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scans_;
}

void StallWatchdog::set_poll_interval_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  poll_ms_ = ms > 0.0 ? ms : 2.0;
  cv_.notify_all();
}

void StallWatchdog::flag(const std::string& what, double unobserved_ms) {
  ++stalls_;  // caller (loop) holds mu_
  static obs::Counter& stalled =
      obs::Registry::global().counter("robust.stalled");
  stalled.inc();
  obs::emit_event("robust.stall",
                  {{"what", what},
                   {"unobserved_ms", std::to_string(unobserved_ms)}});
}

void StallWatchdog::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    if (entries_.empty()) {
      // Park until there is something to watch. Without this the poll
      // thread spins at poll_ms_ for the whole process lifetime once the
      // first watch() has started it — a daemon keeping a watchdog alive
      // for days would pay that forever. watch() and the destructor
      // notify cv_, so parking costs nothing to wake from.
      cv_.wait(lock, [this] { return shutdown_ || !entries_.empty(); });
      continue;
    }
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(poll_ms_));
    cv_.wait_for(lock, period,
                 [this] { return shutdown_; });
    if (shutdown_) break;
    if (entries_.empty()) continue;  // drained while we slept: re-park
    ++scans_;
    for (Entry& entry : entries_) {
      if (entry.flagged) continue;
      // Silent check: monitoring must not register as the workload
      // observing its own stop.
      if (!entry.token.stop_requested_silent()) continue;
      if (entry.token.observed()) continue;
      const double waited = entry.token.ms_since_stop();
      if (waited > entry.budget_ms) {
        entry.flagged = true;
        // flag() touches the registry and trace buffer; both are
        // thread-safe, so holding mu_ here only orders our own state.
        flag(entry.what, waited);
      }
    }
  }
}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace rascad::robust
