#include "mg/generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace rascad::mg {

using markov::CtmcBuilder;
using markov::StateIndex;
using spec::BlockSpec;
using spec::GlobalParams;
using spec::RedundancyMode;
using spec::Transparency;

namespace {

constexpr double kUp = 1.0;
constexpr double kDown = 0.0;

std::string level_name(const char* prefix, unsigned level) {
  return std::string(prefix) + std::to_string(level);
}

/// Generator for one symmetric redundant block (Types 1-4). The chain
/// layout follows DESIGN.md Section 4; every state family is created only
/// when the parameters that feed it are active, so degenerate parameter
/// settings produce the smallest equivalent chain.
class RedundantChainBuilder {
 public:
  RedundantChainBuilder(const BlockSpec& block, const DerivedRates& d,
                        RewardKind reward)
      : block_(block),
        d_(d),
        reward_(reward),
        levels_(block.quantity - block.min_quantity),
        transparent_recovery_(block.recovery == Transparency::kTransparent),
        transparent_repair_(block.repair == Transparency::kTransparent),
        has_perm_(d.lambda_p > 0.0),
        has_trans_(d.lambda_t > 0.0),
        has_latent_(has_perm_ && block.p_latent_fault > 0.0),
        has_spf_(block.p_spf > 0.0),
        imperfect_(has_perm_ && block.p_correct_diagnosis < 1.0) {}

  GeneratedModel build() {
    create_states();
    add_failure_transitions();
    add_recovery_transitions();
    add_repair_transitions();
    GeneratedModel model;
    model.chain = builder_.build();
    model.type = classify(block_);
    model.initial = pf_[0];
    model.block_name = block_.name;
    return model;
  }

 private:
  /// Reward of a level-i up state: 1 for availability models, remaining
  /// capacity fraction for performability models.
  double level_reward(unsigned i) const {
    if (reward_ == RewardKind::kAvailability) return kUp;
    const double n = static_cast<double>(block_.quantity);
    return (n - static_cast<double>(i)) / n;
  }

  void create_states() {
    const unsigned m = levels_;
    pf_.resize(m + 1);
    pf_[0] = builder_.add_state("Ok", kUp);
    for (unsigned i = 1; i <= m; ++i) {
      pf_[i] = builder_.add_state(level_name("PF", i), level_reward(i));
    }
    if (has_perm_) {
      pf_down_ = builder_.add_state(level_name("PF", m + 1), kDown);
    }
    if (has_latent_) {
      latent_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        latent_[i] =
            builder_.add_state(level_name("Latent", i), level_reward(i));
      }
    }
    if (has_perm_ && !transparent_recovery_) {
      ar_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        ar_[i] = builder_.add_state(level_name("AR", i), kDown);
      }
    }
    if (has_spf_) {
      spf_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        spf_[i] = builder_.add_state(level_name("SPF", i), kDown);
      }
    }
    if (has_trans_ && !transparent_recovery_) {
      tf_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        tf_[i] = builder_.add_state(level_name("TF", i), kDown);
      }
    }
    if (has_trans_) {
      tf_down_ = builder_.add_state(level_name("TF", m + 1), kDown);
    }
    if (imperfect_) {
      se_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        se_[i] = builder_.add_state(level_name("SE", i), kDown);
      }
      se_down_ = builder_.add_state(level_name("SE", m + 1), kDown);
    }
    if (has_perm_ && !transparent_repair_) {
      reint_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        reint_[i] = builder_.add_state(level_name("Reint", i), kDown);
      }
    }
  }

  /// Routes a *detected* permanent fault occurring at level `i` (i < M):
  /// nontransparent recovery dwells in AR(i+1); transparent recovery
  /// branches instantly between the next level and its SPF state.
  void route_detected_fault(StateIndex from, unsigned i, double rate) {
    if (transparent_recovery_) {
      const double p_spf = has_spf_ ? block_.p_spf : 0.0;
      if (rate * (1.0 - p_spf) > 0.0) {
        builder_.add_transition(from, pf_[i + 1], rate * (1.0 - p_spf));
      }
      if (has_spf_ && rate * p_spf > 0.0) {
        builder_.add_transition(from, spf_[i + 1], rate * p_spf);
      }
    } else {
      builder_.add_transition(from, ar_[i + 1], rate);
    }
  }

  void add_failure_transitions() {
    const unsigned m = levels_;
    const unsigned n = block_.quantity;
    const double plf = has_latent_ ? block_.p_latent_fault : 0.0;

    for (unsigned i = 0; i <= m; ++i) {
      const double good = static_cast<double>(n - i);
      const double perm_rate = good * d_.lambda_p;
      const double trans_rate = good * d_.lambda_t;

      // Permanent faults from the detected-degraded level i.
      if (has_perm_) {
        if (i == m) {
          // No redundancy left: the block goes down regardless of
          // detection (paper: PF1 -> PF2 in Figure 4).
          builder_.add_transition(pf_[i], pf_down_, perm_rate);
        } else {
          route_detected_fault(pf_[i], i, perm_rate * (1.0 - plf));
          if (has_latent_) {
            builder_.add_transition(pf_[i], latent_[i + 1], perm_rate * plf);
          }
        }
      }

      // Transient faults from level i.
      if (has_trans_) {
        if (i == m) {
          builder_.add_transition(pf_[i], tf_down_, trans_rate);
        } else if (!transparent_recovery_) {
          builder_.add_transition(pf_[i], tf_[i + 1], trans_rate);
        } else if (has_spf_) {
          // Transparent recovery masks the transient except for the
          // data-corruption branch that costs a redundancy level.
          builder_.add_transition(pf_[i], spf_[i + 1],
                                  trans_rate * block_.p_spf);
        }
      }
    }

    // Faults striking while a latent fault is outstanding.
    if (has_latent_) {
      for (unsigned i = 1; i <= m; ++i) {
        const double good = static_cast<double>(n - i);
        const double perm_rate = good * d_.lambda_p;
        const double trans_rate = good * d_.lambda_t;
        if (i == m) {
          // Paper: Latent1 -> PF2 / TF2 for N=2, K=1.
          builder_.add_transition(latent_[i], pf_down_, perm_rate);
          if (has_trans_) {
            builder_.add_transition(latent_[i], tf_down_, trans_rate);
          }
        } else {
          route_detected_fault(latent_[i], i, perm_rate * (1.0 - plf));
          builder_.add_transition(latent_[i], latent_[i + 1],
                                  perm_rate * plf);
          if (has_trans_) {
            if (!transparent_recovery_) {
              builder_.add_transition(latent_[i], tf_[i + 1], trans_rate);
            } else if (has_spf_) {
              builder_.add_transition(latent_[i], spf_[i + 1],
                                      trans_rate * block_.p_spf);
            }
          }
        }
      }
    }
  }

  void add_recovery_transitions() {
    const unsigned m = levels_;
    const double p_spf = has_spf_ ? block_.p_spf : 0.0;

    // AR dwell states (nontransparent recovery): success reaches the next
    // degraded level, failure is the single point of failure.
    if (has_perm_ && !transparent_recovery_) {
      const double ar_rate = 1.0 / d_.ar_time_h;
      for (unsigned i = 1; i <= m; ++i) {
        if (ar_rate * (1.0 - p_spf) > 0.0) {
          builder_.add_transition(ar_[i], pf_[i], ar_rate * (1.0 - p_spf));
        }
        if (has_spf_) {
          builder_.add_transition(ar_[i], spf_[i], ar_rate * p_spf);
        }
      }
    }

    // Latent-fault detection after MTTDLF (paper: Latent1 -> AR1).
    if (has_latent_) {
      const double detect = 1.0 / d_.mttdlf_h;
      for (unsigned i = 1; i <= m; ++i) {
        if (!transparent_recovery_) {
          builder_.add_transition(latent_[i], ar_[i], detect);
        } else {
          if (detect * (1.0 - p_spf) > 0.0) {
            builder_.add_transition(latent_[i], pf_[i],
                                    detect * (1.0 - p_spf));
          }
          if (has_spf_) {
            builder_.add_transition(latent_[i], spf_[i], detect * p_spf);
          }
        }
      }
    }

    // SPF dwell, then the system continues at the degraded level.
    if (has_spf_) {
      const double out = 1.0 / d_.t_spf_h;
      for (unsigned i = 1; i <= m; ++i) {
        builder_.add_transition(spf_[i], pf_[i], out);
      }
    }

    // Transient recovery by reboot (nontransparent): success clears the
    // fault back to the originating level; data corruption costs a level.
    if (has_trans_) {
      const double boot = 1.0 / d_.t_boot_h;
      if (!transparent_recovery_) {
        for (unsigned i = 1; i <= m; ++i) {
          if (boot * (1.0 - p_spf) > 0.0) {
            builder_.add_transition(tf_[i], pf_[i - 1],
                                    boot * (1.0 - p_spf));
          }
          if (has_spf_) {
            builder_.add_transition(tf_[i], spf_[i], boot * p_spf);
          }
        }
      }
      // Bottom transient state exists in every type.
      if (boot * (1.0 - p_spf) > 0.0) {
        builder_.add_transition(tf_down_, pf_[m], boot * (1.0 - p_spf));
      }
      if (has_spf_ && m >= 1) {
        builder_.add_transition(tf_down_, spf_[m], boot * p_spf);
      } else if (has_spf_) {
        builder_.add_transition(tf_down_, pf_[m], boot * p_spf);
      }
    }
  }

  void add_repair_transitions() {
    if (!has_perm_) return;
    const unsigned m = levels_;
    const double pcd = block_.p_correct_diagnosis;
    const double deferred = 1.0 / d_.deferred_repair_h();
    const double immediate = 1.0 / d_.immediate_repair_h();

    // Deferred repair of one component per service action from each
    // degraded level (paper: PF1 -> Ok after MTTM + Tresp).
    for (unsigned i = 1; i <= m; ++i) {
      const StateIndex success_target =
          transparent_repair_ ? pf_[i - 1] : reint_[i];
      if (deferred * pcd > 0.0) {
        builder_.add_transition(pf_[i], success_target, deferred * pcd);
      }
      if (imperfect_) {
        builder_.add_transition(pf_[i], se_[i], deferred * (1.0 - pcd));
      }
      // Repair of the older, already-detected faults while the newest
      // fault is still latent (only meaningful at depth >= 2).
      if (has_latent_ && i >= 2) {
        if (deferred * pcd > 0.0) {
          builder_.add_transition(latent_[i], latent_[i - 1],
                                  deferred * pcd);
        }
        if (imperfect_) {
          builder_.add_transition(latent_[i], se_[i], deferred * (1.0 - pcd));
        }
      }
    }

    // Nontransparent repair: reintegration restart downtime.
    if (!transparent_repair_) {
      const double out = 1.0 / d_.reint_h;
      for (unsigned i = 1; i <= m; ++i) {
        builder_.add_transition(reint_[i], pf_[i - 1], out);
      }
    }

    // Service error: incorrect diagnosis pulled the wrong component; the
    // longer MTTRFID downtime ends with the original fault fixed.
    if (imperfect_) {
      const double out = 1.0 / d_.mttrfid_h;
      for (unsigned i = 1; i <= m; ++i) {
        builder_.add_transition(se_[i], pf_[i - 1], out);
      }
      builder_.add_transition(se_down_, pf_[m], out);
    }

    // Bottom level: immediate service call (paper: "In PF2, an immediate
    // service call is placed").
    if (immediate * pcd > 0.0) {
      builder_.add_transition(pf_down_, pf_[m], immediate * pcd);
    }
    if (imperfect_) {
      builder_.add_transition(pf_down_, se_down_, immediate * (1.0 - pcd));
    }
  }

  const BlockSpec& block_;
  const DerivedRates& d_;
  const RewardKind reward_;
  const unsigned levels_;  // M = N - K
  const bool transparent_recovery_;
  const bool transparent_repair_;
  const bool has_perm_;
  const bool has_trans_;
  const bool has_latent_;
  const bool has_spf_;
  const bool imperfect_;

  CtmcBuilder builder_;
  std::vector<StateIndex> pf_;      // pf_[0] == Ok
  std::vector<StateIndex> latent_;  // valid 1..M when has_latent_
  std::vector<StateIndex> ar_;      // valid 1..M, nontransparent recovery
  std::vector<StateIndex> spf_;     // valid 1..M when has_spf_
  std::vector<StateIndex> tf_;      // valid 1..M, nontransparent recovery
  std::vector<StateIndex> se_;      // valid 1..M when imperfect_
  std::vector<StateIndex> reint_;   // valid 1..M, nontransparent repair
  StateIndex pf_down_ = 0;
  StateIndex tf_down_ = 0;
  StateIndex se_down_ = 0;
};

/// Redundant block with only transient faults (no permanent-fault level
/// structure): transparent recovery masks transients entirely except the
/// SPF branch; nontransparent recovery costs a reboot per transient.
GeneratedModel generate_transient_only_redundant(const BlockSpec& block,
                                                 const DerivedRates& d) {
  CtmcBuilder b;
  const StateIndex ok = b.add_state("Ok", kUp);
  const double rate = static_cast<double>(block.quantity) * d.lambda_t;
  const bool has_spf = block.p_spf > 0.0;
  StateIndex spf = 0;
  if (has_spf) {
    spf = b.add_state("SPF1", kDown);
    b.add_transition(spf, ok, 1.0 / d.t_spf_h);
  }
  if (block.recovery == Transparency::kTransparent) {
    if (has_spf) b.add_transition(ok, spf, rate * block.p_spf);
  } else {
    const StateIndex tf = b.add_state("TF1", kDown);
    b.add_transition(ok, tf, rate);
    const double boot = 1.0 / d.t_boot_h;
    const double p_spf = has_spf ? block.p_spf : 0.0;
    if (boot * (1.0 - p_spf) > 0.0) {
      b.add_transition(tf, ok, boot * (1.0 - p_spf));
    }
    if (has_spf) b.add_transition(tf, spf, boot * p_spf);
  }
  GeneratedModel model;
  model.chain = b.build();
  model.type = classify(block);
  model.initial = ok;
  model.block_name = block.name;
  return model;
}

/// Markov Model Type 0: no redundancy (paper Figure 3). A permanent fault
/// downs the block and walks the logistic -> repair -> (service error)
/// pipeline; a transient fault costs a reboot.
GeneratedModel generate_type0(const BlockSpec& block, const DerivedRates& d) {
  CtmcBuilder b;
  const StateIndex ok = b.add_state("Ok", kUp);
  const double n = static_cast<double>(block.quantity);
  const bool imperfect = block.p_correct_diagnosis < 1.0;

  if (d.lambda_p > 0.0) {
    const double pcd = block.p_correct_diagnosis;
    StateIndex se = 0;
    if (imperfect) se = b.add_state("ServiceError", kDown);

    // Stage the downtime through the positive-duration phases only.
    StateIndex stage = ok;
    double entry_rate = n * d.lambda_p;
    if (d.t_resp_h > 0.0) {
      const StateIndex wait = b.add_state("LogisticWait", kDown);
      b.add_transition(stage, wait, entry_rate);
      stage = wait;
      entry_rate = 1.0 / d.t_resp_h;
    }
    if (d.mttr_h > 0.0) {
      const StateIndex repair = b.add_state("Repair", kDown);
      b.add_transition(stage, repair, entry_rate);
      stage = repair;
      entry_rate = 1.0 / d.mttr_h;
    }
    // `stage` is the last down phase; branch on diagnosis quality.
    if (entry_rate * pcd > 0.0) {
      b.add_transition(stage, ok, entry_rate * pcd);
    }
    if (imperfect) {
      b.add_transition(stage, se, entry_rate * (1.0 - pcd));
      b.add_transition(se, ok, 1.0 / d.mttrfid_h);
    }
  }
  if (d.lambda_t > 0.0) {
    const StateIndex tf = b.add_state("TF", kDown);
    b.add_transition(ok, tf, n * d.lambda_t);
    b.add_transition(tf, ok, 1.0 / d.t_boot_h);
  }

  GeneratedModel model;
  model.chain = b.build();
  model.type = MarkovModelType::kType0;
  model.initial = ok;
  model.block_name = block.name;
  return model;
}

/// Primary/standby cluster (extension; the paper lists this architecture
/// as work in progress). Asymmetric two-node failover chain.
GeneratedModel generate_primary_standby(const BlockSpec& block,
                                        const DerivedRates& d) {
  CtmcBuilder b;
  const double fault_rate = d.lambda_p + d.lambda_t;
  if (!(fault_rate > 0.0)) {
    throw std::invalid_argument(
        "generate: primary_standby block has no failure behaviour");
  }
  const double pcd = block.p_correct_diagnosis;
  const bool has_perm = d.lambda_p > 0.0;
  const bool imperfect = has_perm && pcd < 1.0;
  const bool transparent_repair = block.repair == Transparency::kTransparent;

  const StateIndex ok = b.add_state("Ok", kUp);
  const StateIndex degraded = b.add_state("Degraded", kUp);
  StateIndex standby_down = 0;
  StateIndex both_down = 0;
  if (has_perm) {
    standby_down = b.add_state("StandbyDown", kUp);
    both_down = b.add_state("BothDown", kDown);
  }

  // Primary failure triggers failover.
  if (d.failover_h > 0.0) {
    const StateIndex failover = b.add_state("Failover", kDown);
    b.add_transition(ok, failover, fault_rate);
    const double out = 1.0 / d.failover_h;
    const double p_fo = block.p_failover;
    if (out * p_fo > 0.0) b.add_transition(failover, degraded, out * p_fo);
    if (p_fo < 1.0) {
      const StateIndex stuck = b.add_state("FailoverStuck", kDown);
      b.add_transition(failover, stuck, out * (1.0 - p_fo));
      const double dwell =
          d.t_spf_h > 0.0 ? d.t_spf_h : std::max(d.t_boot_h, 1.0 / 60.0);
      b.add_transition(stuck, degraded, 1.0 / dwell);
    }
  } else {
    b.add_transition(ok, degraded, fault_rate);
  }

  // Standby permanent failure while healthy: no service interruption,
  // deferred fix. (Standby transients self-clear on the standby's own
  // reboot with no service impact, so they do not appear here.)
  StateIndex se = 0;
  if (imperfect) se = b.add_state("ServiceError", kDown);

  if (has_perm) {
    const double deferred = 1.0 / d.deferred_repair_h();
    const double immediate = 1.0 / d.immediate_repair_h();
    b.add_transition(ok, standby_down, d.lambda_p);
    if (deferred * pcd > 0.0) {
      b.add_transition(standby_down, ok, deferred * pcd);
    }
    if (imperfect) {
      b.add_transition(standby_down, se, deferred * (1.0 - pcd));
    }
    // Primary permanent fault with no standby: both nodes dead.
    b.add_transition(standby_down, both_down, d.lambda_p);
    b.add_transition(both_down, degraded, immediate);

    // Primary transient while the standby is down costs a reboot.
    if (d.lambda_t > 0.0 && d.t_boot_h > 0.0) {
      const StateIndex tf_exposed = b.add_state("TFExposed", kDown);
      b.add_transition(standby_down, tf_exposed, d.lambda_t);
      b.add_transition(tf_exposed, standby_down, 1.0 / d.t_boot_h);
    }

    // Repair of the failed primary while running on the standby.
    StateIndex repair_target = ok;
    if (!transparent_repair && d.reint_h > 0.0) {
      const StateIndex failback = b.add_state("Failback", kDown);
      b.add_transition(failback, ok, 1.0 / d.reint_h);
      repair_target = failback;
    }
    if (deferred * pcd > 0.0) {
      b.add_transition(degraded, repair_target, deferred * pcd);
    }
    if (imperfect) {
      b.add_transition(degraded, se, deferred * (1.0 - pcd));
      b.add_transition(se, ok, 1.0 / d.mttrfid_h);
    }
    // Permanent failure of the lone active node: both nodes dead.
    b.add_transition(degraded, both_down, d.lambda_p);
  } else {
    // Transient-only cluster: the transiently-failed primary recovers with
    // its own reboot, after which service fails back.
    b.add_transition(degraded, ok, 1.0 / d.t_boot_h);
  }

  // Transient on the lone active node costs a reboot.
  if (has_perm && d.lambda_t > 0.0 && d.t_boot_h > 0.0) {
    const StateIndex tf = b.add_state("TFDegraded", kDown);
    b.add_transition(degraded, tf, d.lambda_t);
    b.add_transition(tf, degraded, 1.0 / d.t_boot_h);
  }

  GeneratedModel model;
  model.chain = b.build();
  model.type = MarkovModelType::kPrimaryStandby;
  model.initial = ok;
  model.block_name = block.name;
  return model;
}

}  // namespace

std::string to_string(MarkovModelType type) {
  switch (type) {
    case MarkovModelType::kType0:
      return "Type 0";
    case MarkovModelType::kType1:
      return "Type 1 (transparent recovery, transparent repair)";
    case MarkovModelType::kType2:
      return "Type 2 (transparent recovery, nontransparent repair)";
    case MarkovModelType::kType3:
      return "Type 3 (nontransparent recovery, transparent repair)";
    case MarkovModelType::kType4:
      return "Type 4 (nontransparent recovery, nontransparent repair)";
    case MarkovModelType::kPrimaryStandby:
      return "Primary/Standby (extension)";
  }
  return "unknown";
}

MarkovModelType classify(const spec::BlockSpec& block) {
  if (block.mode == RedundancyMode::kPrimaryStandby) {
    return MarkovModelType::kPrimaryStandby;
  }
  if (!block.redundant()) return MarkovModelType::kType0;
  const bool tr = block.recovery == Transparency::kTransparent;
  const bool tp = block.repair == Transparency::kTransparent;
  if (tr && tp) return MarkovModelType::kType1;
  if (tr && !tp) return MarkovModelType::kType2;
  if (!tr && tp) return MarkovModelType::kType3;
  return MarkovModelType::kType4;
}

DerivedRates derive_rates(const spec::BlockSpec& block,
                          const spec::GlobalParams& globals) {
  DerivedRates d;
  if (block.mtbf_h > 0.0) d.lambda_p = 1.0 / block.mtbf_h;
  d.lambda_t = block.transient_fit * 1e-9;
  d.mttr_h = block.mttr_total_h();
  d.t_resp_h = block.service_response_h;
  d.mttm_h = globals.mttm_h;
  d.mttrfid_h = globals.mttrfid_h;
  d.t_boot_h = globals.reboot_time_h;
  d.ar_time_h = block.ar_time_min / 60.0;
  d.t_spf_h = block.t_spf_min / 60.0;
  d.reint_h = block.reintegration_min / 60.0;
  d.mttdlf_h = block.mttdlf_h;
  d.failover_h = block.failover_time_min / 60.0;
  return d;
}

GeneratedModel generate(const spec::BlockSpec& block,
                        const spec::GlobalParams& globals) {
  return generate(block, globals, GenerationOptions{});
}

GeneratedModel generate(const spec::BlockSpec& block,
                        const spec::GlobalParams& globals,
                        const GenerationOptions& options) {
  if (!block.has_own_failures()) {
    throw std::invalid_argument("generate: block '" + block.name +
                                "' has no failure parameters");
  }
  if (block.quantity == 0 || block.min_quantity == 0 ||
      block.min_quantity > block.quantity) {
    throw std::invalid_argument("generate: block '" + block.name +
                                "' has inconsistent quantities");
  }
  const DerivedRates d = derive_rates(block, globals);
  if (d.lambda_t > 0.0 && d.t_boot_h <= 0.0) {
    throw std::invalid_argument(
        "generate: transient faults require a positive reboot_time");
  }
  if (d.lambda_p > 0.0 && d.immediate_repair_h() <= 0.0) {
    throw std::invalid_argument(
        "generate: permanent faults require MTTR and/or service response");
  }
  switch (classify(block)) {
    case MarkovModelType::kType0:
      return generate_type0(block, d);
    case MarkovModelType::kPrimaryStandby:
      return generate_primary_standby(block, d);
    default:
      break;
  }
  // Redundant symmetric chain; parameter preconditions beyond validation.
  if (block.recovery == Transparency::kNontransparent && d.lambda_p > 0.0 &&
      d.ar_time_h <= 0.0) {
    throw std::invalid_argument(
        "generate: nontransparent recovery requires positive ar_time");
  }
  if (block.repair == Transparency::kNontransparent && d.lambda_p > 0.0 &&
      d.reint_h <= 0.0) {
    throw std::invalid_argument(
        "generate: nontransparent repair requires positive "
        "reintegration_time");
  }
  if (block.p_latent_fault > 0.0 && d.lambda_p > 0.0 && d.mttdlf_h <= 0.0) {
    throw std::invalid_argument(
        "generate: latent faults require positive mttdlf");
  }
  if (block.p_spf > 0.0 && d.t_spf_h <= 0.0) {
    throw std::invalid_argument("generate: p_spf > 0 requires positive t_spf");
  }
  if (d.lambda_p <= 0.0) {
    return generate_transient_only_redundant(block, d);
  }
  return RedundantChainBuilder(block, d, options.reward).build();
}

cache::Signature chain_signature(const spec::BlockSpec& block,
                                 const spec::GlobalParams& globals,
                                 const GenerationOptions& options) {
  const MarkovModelType type = classify(block);
  DerivedRates d = derive_rates(block, globals);
  const bool has_perm = d.lambda_p > 0.0;
  const bool has_trans = d.lambda_t > 0.0;

  double pcd = block.p_correct_diagnosis;
  double plf = block.p_latent_fault;
  double pspf = block.p_spf;
  double pfo = block.p_failover;
  bool recovery_nt = block.recovery == Transparency::kNontransparent;
  bool repair_nt = block.repair == Transparency::kNontransparent;

  // Mask every input the generator provably ignores for this chain family
  // to a canonical value, mirroring the guards in the generate_* paths
  // above. Masking an input the family *does* read would alias two
  // different chains, so each rule here corresponds to an explicit gate in
  // the generator. Keeping an unused input costs only a missed reuse.
  switch (type) {
    case MarkovModelType::kType0:
      // generate_type0 has no redundancy structure at all.
      plf = 0.0;
      pspf = 0.0;
      pfo = 1.0;
      recovery_nt = false;
      repair_nt = false;
      d.mttm_h = 0.0;
      d.ar_time_h = 0.0;
      d.t_spf_h = 0.0;
      d.reint_h = 0.0;
      d.mttdlf_h = 0.0;
      d.failover_h = 0.0;
      if (!has_perm) {
        pcd = 1.0;
        d.mttr_h = 0.0;
        d.t_resp_h = 0.0;
      }
      if (!has_perm || pcd >= 1.0) d.mttrfid_h = 0.0;
      if (!has_trans) d.t_boot_h = 0.0;
      break;
    case MarkovModelType::kPrimaryStandby: {
      plf = 0.0;
      pspf = 0.0;
      recovery_nt = false;
      d.ar_time_h = 0.0;
      d.mttdlf_h = 0.0;
      // Tspf / Tboot feed the stuck-failover dwell only when failover can
      // get stuck; Tboot additionally feeds every transient reboot.
      const bool stuck = d.failover_h > 0.0 && pfo < 1.0;
      const bool stuck_uses_boot = stuck && d.t_spf_h <= 0.0;
      if (!stuck) d.t_spf_h = 0.0;
      if (!has_trans && !stuck_uses_boot) d.t_boot_h = 0.0;
      if (!(d.failover_h > 0.0)) pfo = 1.0;
      if (!has_perm) {
        pcd = 1.0;
        repair_nt = false;
        d.mttr_h = 0.0;
        d.t_resp_h = 0.0;
        d.mttm_h = 0.0;
        d.reint_h = 0.0;
      } else if (!repair_nt) {
        d.reint_h = 0.0;
      }
      if (!has_perm || pcd >= 1.0) d.mttrfid_h = 0.0;
      break;
    }
    default:  // symmetric redundant, Types 1-4
      pfo = 1.0;
      d.failover_h = 0.0;
      if (!has_perm) {
        // generate_transient_only_redundant: Ok / SPF / TF only.
        pcd = 1.0;
        plf = 0.0;
        repair_nt = false;
        d.mttr_h = 0.0;
        d.t_resp_h = 0.0;
        d.mttm_h = 0.0;
        d.mttrfid_h = 0.0;
        d.ar_time_h = 0.0;
        d.reint_h = 0.0;
        d.mttdlf_h = 0.0;
        if (pspf <= 0.0) d.t_spf_h = 0.0;
        if (!recovery_nt) d.t_boot_h = 0.0;  // transparent masks reboots
      } else {
        if (plf <= 0.0) d.mttdlf_h = 0.0;
        if (!recovery_nt) d.ar_time_h = 0.0;
        if (!repair_nt) d.reint_h = 0.0;
        if (pspf <= 0.0) d.t_spf_h = 0.0;
        if (pcd >= 1.0) d.mttrfid_h = 0.0;
        if (!has_trans) d.t_boot_h = 0.0;
      }
      break;
  }

  cache::Signature s;
  s.append_word(static_cast<std::uint64_t>(type));
  s.append_word(block.quantity);
  s.append_word(block.min_quantity);
  s.append_double(d.lambda_p);
  s.append_double(d.lambda_t);
  s.append_double(d.mttr_h);
  s.append_double(d.t_resp_h);
  s.append_double(d.mttm_h);
  s.append_double(d.mttrfid_h);
  s.append_double(d.t_boot_h);
  s.append_double(d.ar_time_h);
  s.append_double(d.t_spf_h);
  s.append_double(d.reint_h);
  s.append_double(d.mttdlf_h);
  s.append_double(d.failover_h);
  s.append_double(pcd);
  s.append_double(plf);
  s.append_double(pspf);
  s.append_double(pfo);
  s.append_flag(recovery_nt);
  s.append_flag(repair_nt);
  s.append_word(static_cast<std::uint64_t>(options.reward));
  return s;
}

}  // namespace rascad::mg
