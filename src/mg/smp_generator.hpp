// Semi-Markov refinement of the generated block models (extension).
//
// The CTMC generator assumes every dwell — reboots, AR windows, logistic
// delays, repairs — is exponential. RAScad's GMB module supports
// semi-Markov chains, and the natural refinement is to model the
// *scheduled* dwells as deterministic: a reboot takes Tboot, a failover
// takes ar_time, the deferred service window is MTTM + Tresp + MTTR. This
// generator emits that model as a SemiMarkovProcess:
//
//  - dwell-only down states (AR, TF, SPF, Reint, bottom repair) become
//    deterministic sojourns with unchanged branch probabilities;
//  - degraded up states with a *race* between the deterministic repair
//    completion (delay D) and exponential faults (total rate L) get the
//    exact competing-risk embedding: P(repair first) = exp(-L D), mean
//    sojourn (1 - exp(-L D)) / L;
//  - purely exponential states (Ok, latent detection, service error) are
//    unchanged.
//
// Steady-state availability depends only on the embedded chain and the
// mean sojourns (Markov-renewal ratio formula), so the race states are
// where the exponential assumption actually matters; the E13 bench
// quantifies how far the CTMC is from this refinement as L*D grows.
#pragma once

#include "semimarkov/smp.hpp"
#include "spec/ast.hpp"

namespace rascad::mg {

/// Generates the deterministic-dwell semi-Markov refinement of a block
/// model. Supports the Type 0 and symmetric redundant families; throws
/// std::invalid_argument for primary/standby blocks (use the CTMC
/// generator there).
semimarkov::SemiMarkovProcess generate_smp(const spec::BlockSpec& block,
                                           const spec::GlobalParams& globals);

/// Steady-state availability of the semi-Markov refinement.
double smp_availability(const spec::BlockSpec& block,
                        const spec::GlobalParams& globals);

}  // namespace rascad::mg
