// Hierarchical translation of a diagram/block model (paper Section 4):
// each MG diagram becomes a serial RBD over its blocks, each block a
// generated Markov chain, blocks with subdiagrams compose their own chain
// (if any) in series with the subdiagram's RBD. The overall model is a
// hierarchy of RBDs and Markov chains, solved bottom-up.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <optional>

#include "cache/signature.hpp"
#include "cache/solve_cache.hpp"
#include "exec/parallel.hpp"
#include "markov/steady_state.hpp"
#include "mg/generator.hpp"
#include "mg/measures.hpp"
#include "rbd/rbd.hpp"
#include "resilience/resilience.hpp"
#include "robust/cancel.hpp"
#include "spec/ast.hpp"

namespace rascad::mg {

struct BatchPointResult;

/// A fully generated and solved system model.
class SystemModel {
 public:
  struct Options {
    markov::SteadyStateOptions steady;
    /// Grid resolution for transient composition (interval availability,
    /// reliability): per-block reward curves are sampled on this many
    /// segments over the queried horizon, then composed through the RBD.
    std::size_t curve_steps = 256;
    /// Resilience-ladder override for the per-block steady-state solves.
    /// When unset, a config derived from `steady` is used.
    std::optional<resilience::ResilienceConfig> resilience;
    /// Thread-count / chunking control for the per-block solves and curve
    /// sampling. Block order, measures, and every SolveTrace are
    /// bit-identical for any thread count.
    exec::ParallelOptions parallel;
    /// Memo table consulted for block solves and sampled curves; nullptr
    /// disables memoization (every chain generated and solved fresh).
    /// Results are bit-identical either way — a signature match guarantees
    /// the cached solve performed the identical arithmetic.
    cache::SolveCache* cache = &cache::SolveCache::global();
  };

  /// One generated block chain with its solved measures.
  struct BlockEntry {
    std::string diagram;          // owning diagram name
    spec::BlockSpec block;        // full parameter copy
    std::shared_ptr<const markov::Ctmc> chain;  // null for pure wrappers
    MarkovModelType type = MarkovModelType::kType0;
    markov::StateIndex initial = 0;
    double availability = 1.0;
    double yearly_downtime_min = 0.0;
    double eq_failure_rate = 0.0;
    /// Ladder episode that produced this block's stationary solution; its
    /// `source` records whether the numbers came from a fresh solve, the
    /// memo cache, or baseline reuse during an incremental rebuild.
    resilience::SolveTrace solve_trace;
    /// Canonical chain signature (mg::chain_signature) — the memo key
    /// minus the solver-configuration words.
    cache::Signature signature;
  };

  /// Validates the spec (throws std::invalid_argument on errors), then
  /// generates and solves every block chain and composes the RBD tree.
  /// Taken by value: the model is stored in the result, so callers that
  /// are done with their copy can std::move it in (sweeps do).
  static SystemModel build(spec::ModelSpec model, const Options& opts);
  static SystemModel build(spec::ModelSpec model) {
    return build(std::move(model), Options{});
  }

  /// Incremental rebuild against a solved baseline: re-generates and
  /// re-solves only the blocks whose chain signature differs from the
  /// baseline's (a global edit therefore dirties only the blocks it
  /// actually feeds), reuses every untouched BlockEntry (sharing the
  /// chain), and recomposes the RBD. Falls back to a full build when the
  /// hierarchy structure changed (block added / removed / renamed /
  /// reordered) or the solver configuration differs from the baseline's.
  /// Results are bit-identical to a full build of `changed`.
  static SystemModel rebuild(const SystemModel& base, spec::ModelSpec changed,
                             const Options& opts);
  static SystemModel rebuild(const SystemModel& base,
                             spec::ModelSpec changed) {
    return rebuild(base, std::move(changed), base.opts_);
  }

  /// Batched incremental rebuild: many spec variants against one baseline
  /// (the shape of a parameter sweep). Dirty blocks are deduplicated by
  /// chain signature across all variants, and distinct chains sharing one
  /// generator sparsity pattern — sweep points that differ only in rates —
  /// are dispatched as ONE lane-interleaved batched solve
  /// (resilience::solve_steady_state_resilient_batched) when the ladder's
  /// first rung is iterative; everything else takes the scalar ladder.
  /// Entry i corresponds to specs[i] and is bit-identical to
  /// rebuild(base, specs[i], opts) — numbers, traces, and memo-cache keys
  /// are unchanged; only the solve schedule differs. Provenance per point:
  /// clean blocks are kBaselineReuse, memo hits kCacheHit, and each
  /// deduplicated fresh solve is kFresh at its first (lowest point index)
  /// consumer and kCacheHit at the rest, exactly as sequential rebuilds
  /// through the shared memo cache would record.
  static std::vector<SystemModel> rebuild_batch(const SystemModel& base,
                                                std::vector<spec::ModelSpec> specs,
                                                const Options& opts);

  /// Degradation-aware rebuild_batch: never throws for per-point trouble.
  /// Each entry carries either the finished model (status kOk, bit-identical
  /// to rebuild_batch's) or the reason the point was not finished — the
  /// request token fired (kCancelled / kDeadlineExceeded, carried in
  /// `opts.parallel.cancel` or the resilience config) or the point's own
  /// solve failed (kFailed, with the error text). A deadline-bounded batch
  /// therefore returns the completed prefix plus provenance for the rest.
  static std::vector<BatchPointResult> rebuild_batch_robust(
      const SystemModel& base, std::vector<spec::ModelSpec> specs,
      const Options& opts);

  /// Steady-state system availability (product over the serial hierarchy).
  double availability() const { return root_->availability(); }
  double yearly_downtime_min() const {
    return mg::yearly_downtime_minutes(availability());
  }

  /// Equivalent steady-state system failure rate: the sum of the block
  /// up->down flow rates (series system of independent blocks).
  double eq_failure_rate() const;

  /// System MTBF implied by the equivalent failure rate (hours).
  double mtbf_h() const;

  /// Interval availability over (0, horizon): per-block point-availability
  /// curves composed through the RBD and integrated by Simpson's rule.
  double interval_availability(double horizon) const;

  /// System reliability at `horizon`: per-block absorbing-chain survival
  /// curves composed through the RBD.
  double reliability(double horizon) const;

  /// System MTTF by numeric integration of the composed reliability curve
  /// over (0, horizon); pick horizon >> expected MTTF for accuracy.
  double mttf_numeric_h(double horizon) const;

  /// System availability with one block's availability forced to `value`
  /// (the rest of the tree unchanged) — the primitive behind Birnbaum /
  /// RAW / RRW importance measures. Throws std::invalid_argument if the
  /// block does not exist or carries no chain of its own.
  double availability_with_override(const std::string& diagram,
                                    const std::string& block,
                                    double value) const;

  const rbd::RbdNodePtr& root() const noexcept { return root_; }
  const std::vector<BlockEntry>& blocks() const noexcept { return blocks_; }
  const spec::ModelSpec& spec() const noexcept { return spec_; }
  const Options& options() const noexcept { return opts_; }

  /// Total generated chain states / transitions across all blocks.
  std::size_t total_states() const;
  std::size_t total_transitions() const;

 private:
  SystemModel() = default;

  /// Shared engine behind rebuild_batch / rebuild_batch_robust. In strict
  /// mode every error propagates (the historical contract); in degrade mode
  /// errors and cooperative stops are folded into per-point statuses.
  static std::vector<BatchPointResult> rebuild_batch_impl(
      const SystemModel& base, std::vector<spec::ModelSpec> specs,
      const Options& opts, bool degrade);

  spec::ModelSpec spec_;
  Options opts_;
  rbd::RbdNodePtr root_;
  std::vector<BlockEntry> blocks_;
  /// Signature of the solver configuration the block solves ran under;
  /// part of every memo key and the rebuild compatibility check.
  cache::Signature solver_sig_;
};

/// One point of a degradation-aware batched rebuild
/// (SystemModel::rebuild_batch_robust): the model when the point completed,
/// otherwise why it did not.
struct BatchPointResult {
  std::optional<SystemModel> model;  // engaged iff status == kOk
  robust::PointStatus status = robust::PointStatus::kOk;
  /// Cancellation / failure detail; empty when ok.
  std::string detail;

  bool ok() const noexcept { return status == robust::PointStatus::kOk; }
};

/// Signature words of a resilience configuration. Appended to a chain
/// signature to form the block-solve memo key, because the solved numbers
/// depend bit-exactly on the solver settings.
cache::Signature solver_signature(const resilience::ResilienceConfig& config);

/// Generates and solves one block through the resilience ladder,
/// consulting `cache` (may be null). The shared primitive behind
/// SystemModel::build / rebuild and the memoized sensitivity probes.
SystemModel::BlockEntry solve_block_cached(
    const std::string& diagram, const spec::BlockSpec& block,
    const spec::GlobalParams& globals,
    const resilience::ResilienceConfig& config,
    const cache::Signature& solver_sig, cache::SolveCache* cache);

}  // namespace rascad::mg
