// Human-readable explanation of the generation decisions for a block —
// the "you don't need to understand the underlying mathematical models,
// but here is what the tool did and why" documentation hook.
#pragma once

#include <string>

#include "spec/ast.hpp"

namespace rascad::mg {

/// Explains, in prose, which chain family the generator picks for this
/// block, which state families will exist and why, and the derived rates.
/// Throws the same std::invalid_argument as generate() on bad specs.
std::string explain(const spec::BlockSpec& block,
                    const spec::GlobalParams& globals);

}  // namespace rascad::mg
