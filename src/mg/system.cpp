#include "mg/system.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "markov/absorbing.hpp"
#include "markov/transient.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "spec/validate.hpp"

namespace rascad::mg {

namespace {

/// Piecewise-linear interpolation of a sampled curve over [0, horizon];
/// clamps outside the range.
rbd::TimeFunction interpolate(std::shared_ptr<const linalg::Vector> curve,
                              double horizon) {
  return [curve = std::move(curve), horizon](double t) {
    const auto& c = *curve;
    if (t <= 0.0) return c.front();
    if (t >= horizon) return c.back();
    const double pos =
        t / horizon * static_cast<double>(c.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    return c[lo] * (1.0 - frac) + c[lo + 1] * frac;
  };
}

std::string block_key(const std::string& diagram, const std::string& block) {
  return diagram + "\x1f" + block;
}

/// Recursive tree construction shared by the steady-state build and the
/// per-query transient/reliability rebuilds: the leaf factory decides what
/// each block's own chain contributes.
class TreeBuilder {
 public:
  using LeafFactory = std::function<rbd::RbdNodePtr(
      const spec::DiagramSpec&, const spec::BlockSpec&)>;

  TreeBuilder(const spec::ModelSpec& model, LeafFactory factory)
      : model_(model), factory_(std::move(factory)) {}

  rbd::RbdNodePtr build(const spec::DiagramSpec& diagram) {
    std::vector<rbd::RbdNodePtr> children;
    children.reserve(diagram.blocks.size());
    for (const auto& block : diagram.blocks) {
      rbd::RbdNodePtr own;
      if (block.has_own_failures()) {
        own = factory_(diagram, block);
      }
      rbd::RbdNodePtr sub;
      if (block.subdiagram) {
        const spec::DiagramSpec* d = model_.find_diagram(*block.subdiagram);
        if (!d) {
          throw std::invalid_argument("SystemModel: dangling subdiagram '" +
                                      *block.subdiagram + "'");
        }
        sub = build(*d);
      }
      if (own && sub) {
        children.push_back(
            rbd::RbdNode::series(block.name, {std::move(own), std::move(sub)}));
      } else if (own) {
        children.push_back(std::move(own));
      } else if (sub) {
        children.push_back(std::move(sub));
      } else {
        throw std::invalid_argument("SystemModel: block '" + block.name +
                                    "' contributes nothing");
      }
    }
    return rbd::RbdNode::series(diagram.name, std::move(children));
  }

 private:
  const spec::ModelSpec& model_;
  LeafFactory factory_;
};

/// Collects the chain-bearing blocks in the exact order TreeBuilder's leaf
/// factory visits them (own chain first, then the subdiagram's blocks), so
/// a pre-solved vector can be consumed by a running cursor.
void collect_chain_blocks(
    const spec::ModelSpec& model, const spec::DiagramSpec& diagram,
    std::vector<std::pair<const spec::DiagramSpec*, const spec::BlockSpec*>>&
        out) {
  for (const auto& block : diagram.blocks) {
    if (block.has_own_failures()) out.emplace_back(&diagram, &block);
    if (block.subdiagram) {
      const spec::DiagramSpec* sub = model.find_diagram(*block.subdiagram);
      if (!sub) {
        throw std::invalid_argument("SystemModel: dangling subdiagram '" +
                                    *block.subdiagram + "'");
      }
      collect_chain_blocks(model, *sub, out);
    }
  }
}

/// Composes the serial RBD from the solved block table in visit order.
rbd::RbdNodePtr compose_tree(const spec::ModelSpec& spec,
                             const std::vector<SystemModel::BlockEntry>& blocks) {
  std::size_t cursor = 0;
  TreeBuilder builder(
      spec, [&blocks, &cursor](const spec::DiagramSpec&,
                               const spec::BlockSpec& block) -> rbd::RbdNodePtr {
        const SystemModel::BlockEntry& entry = blocks.at(cursor++);
        return rbd::RbdNode::leaf(block.name, entry.availability);
      });
  return builder.build(spec.root());
}

resilience::ResilienceConfig resolve_config(const SystemModel::Options& opts) {
  resilience::ResilienceConfig config =
      opts.resilience ? *opts.resilience
                      : resilience::config_from(opts.steady);
  // The loop-level stop token also fans into every ladder episode, so one
  // request token cancels both the parallel_for scheduling and the solver
  // iterations it already started. An explicit config token wins.
  if (!config.cancel.valid()) config.cancel = opts.parallel.cancel;
  return config;
}


// Curve-kind discriminants for the sampled-curve memo key. A curve is a
// pure function of the generated chain, so the chain signature (without
// the solver words) plus these fully determines the sampled values.
constexpr std::uint64_t kCurveAvailability = 1;
constexpr std::uint64_t kCurveReliability = 2;

cache::Signature curve_key(const cache::Signature& block_sig,
                           std::uint64_t kind, double horizon,
                           std::size_t steps) {
  cache::Signature key = block_sig;
  key.append_word(kind);
  key.append_double(horizon);
  key.append_word(steps);
  return key;
}

/// Memoized sampling of one block curve: consult `cache` (may be null),
/// otherwise run `sample` and insert the result.
template <typename SampleFn>
std::shared_ptr<const linalg::Vector> sample_curve_cached(
    const SystemModel::BlockEntry& block, std::uint64_t kind, double horizon,
    std::size_t steps, cache::SolveCache* cache, SampleFn&& sample) {
  obs::Span span("curve.sample");
  cache::Signature key;
  if (cache) {
    key = curve_key(block.signature, kind, horizon, steps);
    if (std::shared_ptr<const linalg::Vector> hit = cache->find_curve(key)) {
      if (span.active()) {
        span.set_detail(block.diagram + "/" + block.block.name + " hit");
      }
      return hit;
    }
  }
  if (span.active()) {
    span.set_detail(block.diagram + "/" + block.block.name + " sampled");
  }
  auto curve = std::make_shared<const linalg::Vector>(sample());
  if (cache) cache->put_curve(key, curve);
  return curve;
}

}  // namespace

cache::Signature solver_signature(const resilience::ResilienceConfig& config) {
  cache::Signature s;
  s.append_word(config.rungs.size());
  for (resilience::Rung r : config.rungs) {
    s.append_word(static_cast<std::uint64_t>(r));
  }
  s.append_word(static_cast<std::uint64_t>(config.base.method));
  s.append_double(config.base.tolerance);
  s.append_word(config.base.max_iterations);
  s.append_double(config.base.relaxation);
  s.append_word(config.max_states);
  s.append_double(config.deadline_ms);
  // Per-rung budgets and transient retries change which rung can succeed,
  // so they are part of the configuration a cached solve vouches for. The
  // cancel token, backoff timing, and jitter seed are deliberately NOT
  // keyed: they never change the accepted numbers, only when (or whether)
  // the episode is allowed to finish.
  s.append_double(config.rung_deadline_ms);
  s.append_word(config.transient_retries);
  s.append_double(config.health.clamp_tolerance);
  s.append_double(config.health.residual_factor);
  s.append_double(config.health.max_condition);
  // Injected faults change results by design; keying on the plan keeps
  // fault-injection runs from contaminating (or consuming) healthy entries.
  for (const auto& [rung, entry] : config.fault_plan.faults) {
    s.append_word(static_cast<std::uint64_t>(rung));
    s.append_word(static_cast<std::uint64_t>(entry.kind));
    s.append_word(static_cast<std::uint64_t>(entry.initial));
  }
  return s;
}

SystemModel::BlockEntry solve_block_cached(
    const std::string& diagram, const spec::BlockSpec& block,
    const spec::GlobalParams& globals,
    const resilience::ResilienceConfig& config,
    const cache::Signature& solver_sig, cache::SolveCache* cache) {
  obs::Span solve_span("block.solve");
  SystemModel::BlockEntry entry;
  entry.diagram = diagram;
  entry.block = block;
  entry.signature = chain_signature(block, globals);
  cache::Signature key = entry.signature;
  key.append(solver_sig);

  if (cache) {
    if (std::optional<cache::CachedBlockSolve> hit = cache->find_block(key)) {
      entry.chain = std::move(hit->chain);
      entry.type = classify(block);
      entry.initial = hit->initial;
      entry.availability = hit->availability;
      entry.yearly_downtime_min = yearly_downtime_minutes(hit->availability);
      entry.eq_failure_rate = hit->eq_failure_rate;
      entry.solve_trace = std::move(hit->trace);
      entry.solve_trace.source = resilience::SolveSource::kCacheHit;
      if (solve_span.active()) {
        solve_span.set_detail(diagram + "/" + block.name + " " +
                              to_string(entry.solve_trace.source));
      }
      return entry;
    }
  }

  GeneratedModel generated = [&] {
    obs::Span gen_span("mg.generate");
    if (gen_span.active()) gen_span.set_detail(diagram + "/" + block.name);
    return generate(block, globals);
  }();
  resilience::ResilientResult solved =
      resilience::solve_steady_state_resilient(generated.chain, config);
  const markov::SteadyStateResult& steady = solved.result;
  entry.solve_trace = std::move(solved.trace);
  entry.solve_trace.source = resilience::SolveSource::kFresh;
  if (solve_span.active()) {
    solve_span.set_detail(diagram + "/" + block.name + " " +
                          to_string(entry.solve_trace.source));
  }
  entry.type = generated.type;
  entry.initial = generated.initial;
  entry.availability = markov::expected_reward(generated.chain, steady.pi);
  entry.yearly_downtime_min = yearly_downtime_minutes(entry.availability);
  entry.eq_failure_rate =
      markov::equivalent_failure_rate(generated.chain, steady.pi);
  entry.chain =
      std::make_shared<const markov::Ctmc>(std::move(generated.chain));

  if (cache) {
    cache::CachedBlockSolve value;
    value.chain = entry.chain;
    value.initial = entry.initial;
    value.pi = std::make_shared<const linalg::Vector>(steady.pi);
    value.availability = entry.availability;
    value.eq_failure_rate = entry.eq_failure_rate;
    value.trace = entry.solve_trace;  // source == kFresh: the producer
    cache->put_block(key, value);
  }
  return entry;
}

SystemModel SystemModel::build(spec::ModelSpec model, const Options& opts) {
  obs::Span build_span("system.build");
  if (obs::enabled()) {
    static obs::Counter& builds =
        obs::Registry::global().counter("system.builds");
    builds.inc();
  }
  spec::validate_or_throw(model);
  SystemModel sm;
  sm.spec_ = std::move(model);
  sm.opts_ = opts;

  const resilience::ResilienceConfig solve_config = resolve_config(opts);
  sm.solver_sig_ = solver_signature(solve_config);

  // Generate and solve every block chain in parallel. Entries are written
  // by visit index, so the block table — and each entry's SolveTrace —
  // is identical to the serial build's. Parameter-identical blocks share
  // one memo entry (and one Ctmc) through opts.cache.
  std::vector<std::pair<const spec::DiagramSpec*, const spec::BlockSpec*>>
      pending;
  collect_chain_blocks(sm.spec_, sm.spec_.root(), pending);
  if (build_span.active()) {
    build_span.set_detail("blocks=" + std::to_string(pending.size()));
  }
  sm.blocks_.resize(pending.size());
  exec::parallel_for(
      pending.size(),
      [&](std::size_t i) {
        sm.blocks_[i] = solve_block_cached(
            pending[i].first->name, *pending[i].second, sm.spec_.globals,
            solve_config, sm.solver_sig_, opts.cache);
      },
      opts.parallel);

  sm.root_ = compose_tree(sm.spec_, sm.blocks_);
  return sm;
}

SystemModel SystemModel::rebuild(const SystemModel& base,
                                 spec::ModelSpec changed,
                                 const Options& opts) {
  obs::Span rebuild_span("system.rebuild");
  spec::validate_or_throw(changed);
  const resilience::ResilienceConfig solve_config = resolve_config(opts);
  cache::Signature solver_sig = solver_signature(solve_config);

  SystemModel sm;
  sm.spec_ = std::move(changed);  // pending points into sm.spec_ below
  sm.opts_ = opts;

  // The diff pairs blocks by visit index, so the hierarchy must match the
  // baseline block-for-block (and the solver settings must match, or the
  // baseline's numbers would vouch for a different configuration).
  std::vector<std::pair<const spec::DiagramSpec*, const spec::BlockSpec*>>
      pending;
  collect_chain_blocks(sm.spec_, sm.spec_.root(), pending);
  bool compatible = pending.size() == base.blocks_.size() &&
                    solver_sig == base.solver_sig_;
  for (std::size_t i = 0; compatible && i < pending.size(); ++i) {
    compatible = pending[i].first->name == base.blocks_[i].diagram &&
                 pending[i].second->name == base.blocks_[i].block.name;
  }
  if (!compatible) {
    // Detail recorded before the fallback so the trace shows this rebuild
    // degenerated into a full build (whose own span nests underneath).
    if (rebuild_span.active()) rebuild_span.set_detail("incompatible");
    return build(std::move(sm.spec_), opts);
  }

  sm.solver_sig_ = std::move(solver_sig);
  sm.blocks_.resize(pending.size());

  // Serial diff (cheap), then only the dirty blocks re-solve — in
  // parallel, written by index, so the result is bit-identical to a full
  // build for every thread count. Field-equal specs under unchanged
  // globals are provably clean without recomputing their signature; only
  // edited blocks (or every block, after a global edit) fall through to
  // the canonical-signature comparison, which is what applies the
  // per-family masking rules.
  const bool globals_same = sm.spec_.globals == base.spec_.globals;
  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const bool clean =
        (globals_same && *pending[i].second == base.blocks_[i].block) ||
        chain_signature(*pending[i].second, sm.spec_.globals) ==
            base.blocks_[i].signature;
    if (clean) {
      BlockEntry entry = base.blocks_[i];
      entry.block = *pending[i].second;  // carry spec-only edits (names ok)
      entry.solve_trace.source = resilience::SolveSource::kBaselineReuse;
      sm.blocks_[i] = std::move(entry);
    } else {
      dirty.push_back(i);
    }
  }
  if (obs::enabled()) {
    if (rebuild_span.active()) {
      rebuild_span.set_detail(
          "blocks=" + std::to_string(pending.size()) +
          " dirty=" + std::to_string(dirty.size()) +
          " reused=" + std::to_string(pending.size() - dirty.size()));
    }
    static obs::Counter& rebuilds =
        obs::Registry::global().counter("system.rebuilds");
    static obs::Counter& dirty_blocks =
        obs::Registry::global().counter("system.rebuild.dirty_blocks");
    static obs::Counter& reused_blocks =
        obs::Registry::global().counter("system.rebuild.reused_blocks");
    rebuilds.inc();
    dirty_blocks.inc(dirty.size());
    reused_blocks.inc(pending.size() - dirty.size());
  }
  exec::parallel_for(
      dirty.size(),
      [&](std::size_t j) {
        const std::size_t i = dirty[j];
        sm.blocks_[i] = solve_block_cached(
            pending[i].first->name, *pending[i].second, sm.spec_.globals,
            solve_config, sm.solver_sig_, opts.cache);
      },
      opts.parallel);

  sm.root_ = compose_tree(sm.spec_, sm.blocks_);
  return sm;
}

std::vector<SystemModel> SystemModel::rebuild_batch(
    const SystemModel& base, std::vector<spec::ModelSpec> specs,
    const Options& opts) {
  std::vector<BatchPointResult> results =
      rebuild_batch_impl(base, std::move(specs), opts, /*degrade=*/false);
  std::vector<SystemModel> out;
  out.reserve(results.size());
  for (BatchPointResult& r : results) out.push_back(std::move(*r.model));
  return out;
}

std::vector<BatchPointResult> SystemModel::rebuild_batch_robust(
    const SystemModel& base, std::vector<spec::ModelSpec> specs,
    const Options& opts) {
  return rebuild_batch_impl(base, std::move(specs), opts, /*degrade=*/true);
}

std::vector<BatchPointResult> SystemModel::rebuild_batch_impl(
    const SystemModel& base, std::vector<spec::ModelSpec> specs,
    const Options& opts, bool degrade) {
  obs::Span batch_span("system.rebuild_batch");
  const resilience::ResilienceConfig solve_config = resolve_config(opts);
  const cache::Signature solver_sig = solver_signature(solve_config);
  // Degraded runs watch the request token (resolve_config already folded
  // opts.parallel.cancel in); strict runs keep the historical throw-through
  // behaviour, so the batch-level token stays inert here.
  const robust::CancelToken stop =
      degrade ? solve_config.cancel : robust::CancelToken{};

  // Per-point scaffolding. `specs` is never resized below, so the pending
  // pointers into it stay valid.
  struct Point {
    bool full_build = false;  // structure/solver incompatible with base
    std::vector<std::pair<const spec::DiagramSpec*, const spec::BlockSpec*>>
        pending;
    std::vector<BlockEntry> blocks;
    robust::PointStatus status = robust::PointStatus::kOk;
    std::string detail;
  };
  std::vector<Point> points(specs.size());

  // One deduplicated solve job per distinct dirty chain signature.
  struct Job {
    cache::Signature chain_sig;
    cache::Signature key;  // chain_sig + solver words: the memo key
    const spec::BlockSpec* block = nullptr;  // first consumer's spec
    const spec::GlobalParams* globals = nullptr;
    std::vector<std::pair<std::size_t, std::size_t>> sites;  // (point, slot)
    GeneratedModel generated;
    bool from_cache = false;
    BlockEntry entry;  // diagram/block fields overwritten per site
    std::optional<resilience::ResilientResult> solved;
    bool fresh_consumed = false;  // first consumer gets kFresh
    bool generated_ok = false;
    robust::PointStatus status = robust::PointStatus::kOk;
    std::string detail;
  };
  std::vector<Job> jobs;

  for (std::size_t p = 0; p < specs.size(); ++p) {
    Point& point = points[p];
    if (degrade) {
      try {
        spec::validate_or_throw(specs[p]);
      } catch (const std::exception& e) {
        point.status = robust::PointStatus::kFailed;
        point.detail = e.what();
        continue;
      }
    } else {
      spec::validate_or_throw(specs[p]);
    }
    collect_chain_blocks(specs[p], specs[p].root(), point.pending);
    bool compatible = point.pending.size() == base.blocks_.size() &&
                      solver_sig == base.solver_sig_;
    for (std::size_t i = 0; compatible && i < point.pending.size(); ++i) {
      compatible =
          point.pending[i].first->name == base.blocks_[i].diagram &&
          point.pending[i].second->name == base.blocks_[i].block.name;
    }
    if (!compatible) {
      point.full_build = true;
      continue;
    }
    point.blocks.resize(point.pending.size());
    const bool globals_same = specs[p].globals == base.spec_.globals;
    for (std::size_t i = 0; i < point.pending.size(); ++i) {
      const spec::BlockSpec& blk = *point.pending[i].second;
      cache::Signature sig;
      bool clean = globals_same && blk == base.blocks_[i].block;
      if (!clean) {
        sig = chain_signature(blk, specs[p].globals);
        clean = sig == base.blocks_[i].signature;
      }
      if (clean) {
        BlockEntry entry = base.blocks_[i];
        entry.block = blk;
        entry.solve_trace.source = resilience::SolveSource::kBaselineReuse;
        point.blocks[i] = std::move(entry);
        continue;
      }
      Job* job = nullptr;
      for (Job& j : jobs) {
        if (j.chain_sig == sig) {
          job = &j;
          break;
        }
      }
      if (!job) {
        Job j;
        j.chain_sig = sig;
        j.key = sig;
        j.key.append(solver_sig);
        j.block = &blk;
        j.globals = &specs[p].globals;
        jobs.push_back(std::move(j));
        job = &jobs.back();
      }
      job->sites.emplace_back(p, i);
    }
  }

  // Memo lookups first: a hit serves every site of the job as kCacheHit.
  std::vector<std::size_t> fresh;  // indices into jobs
  for (std::size_t f = 0; f < jobs.size(); ++f) {
    Job& job = jobs[f];
    if (opts.cache) {
      if (std::optional<cache::CachedBlockSolve> hit =
              opts.cache->find_block(job.key)) {
        job.from_cache = true;
        job.entry.chain = std::move(hit->chain);
        job.entry.type = classify(*job.block);
        job.entry.initial = hit->initial;
        job.entry.availability = hit->availability;
        job.entry.yearly_downtime_min =
            yearly_downtime_minutes(hit->availability);
        job.entry.eq_failure_rate = hit->eq_failure_rate;
        job.entry.solve_trace = std::move(hit->trace);
        job.entry.solve_trace.source = resilience::SolveSource::kCacheHit;
        job.entry.signature = job.chain_sig;
        continue;
      }
    }
    fresh.push_back(f);
  }

  // Generate the remaining chains in parallel, then group them by
  // generator sparsity pattern: structure-sharing groups go through one
  // lane-interleaved batched ladder solve, singleton (or fallback) lanes
  // through the scalar ladder.
  const auto generate_job = [&](std::size_t j) {
    Job& job = jobs[fresh[j]];
    obs::Span gen_span("mg.generate");
    if (gen_span.active()) gen_span.set_detail(job.block->name);
    job.generated = generate(*job.block, *job.globals);
    job.generated_ok = true;
  };
  if (degrade) {
    exec::ParallelOptions gen_par = opts.parallel;
    gen_par.cancel = stop;
    exec::parallel_for_status(
        fresh.size(),
        [&](std::size_t j) {
          try {
            generate_job(j);
          } catch (...) {
            Job& job = jobs[fresh[j]];
            std::tie(job.status, job.detail) =
                robust::point_status_from_exception(std::current_exception());
          }
        },
        gen_par);
    for (std::size_t f : fresh) {
      Job& job = jobs[f];
      if (job.generated_ok || job.status != robust::PointStatus::kOk) continue;
      const robust::StopReason r = stop.reason();
      job.status = r == robust::StopReason::kNone
                       ? robust::PointStatus::kFailed
                       : robust::point_status_from(r);
      job.detail = std::string("generation skipped (") + robust::to_string(r) +
                   ")";
    }
  } else {
    exec::parallel_for(fresh.size(), generate_job, opts.parallel);
  }

  std::vector<std::vector<std::size_t>> groups;  // indices into jobs
  for (std::size_t f : fresh) {
    if (!jobs[f].generated_ok) continue;
    bool placed = false;
    for (auto& group : groups) {
      const auto& rep = jobs[group.front()].generated.chain.generator();
      if (rep.same_pattern(jobs[f].generated.chain.generator())) {
        group.push_back(f);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({f});
  }
  for (const auto& group : groups) {
    if (group.size() >= 2 && !(degrade && stop.valid() &&
                               stop.stop_requested())) {
      std::vector<const markov::Ctmc*> chains;
      chains.reserve(group.size());
      for (std::size_t f : group) {
        chains.push_back(&jobs[f].generated.chain);
      }
      const auto run_batched = [&] {
        std::vector<std::optional<resilience::ResilientResult>> solved =
            resilience::solve_steady_state_resilient_batched(chains,
                                                             solve_config);
        for (std::size_t l = 0; l < group.size(); ++l) {
          jobs[group[l]].solved = std::move(solved[l]);
        }
      };
      if (degrade) {
        try {
          run_batched();
        } catch (...) {
          // A stop (or failure) mid-batch leaves every lane unsolved; the
          // per-lane scalar fallback below classifies each one.
        }
      } else {
        run_batched();
      }
    }
    for (std::size_t f : group) {
      Job& job = jobs[f];
      if (job.solved) continue;
      if (degrade) {
        try {
          job.solved = resilience::solve_steady_state_resilient(
              job.generated.chain, solve_config);
        } catch (...) {
          std::tie(job.status, job.detail) =
              robust::point_status_from_exception(std::current_exception());
        }
      } else {
        job.solved = resilience::solve_steady_state_resilient(
            job.generated.chain, solve_config);
      }
    }
  }
  for (std::size_t f : fresh) {
    Job& job = jobs[f];
    if (!job.solved) continue;
    const markov::SteadyStateResult& steady = job.solved->result;
    job.entry.solve_trace = std::move(job.solved->trace);
    job.entry.solve_trace.source = resilience::SolveSource::kFresh;
    job.entry.type = job.generated.type;
    job.entry.initial = job.generated.initial;
    job.entry.availability =
        markov::expected_reward(job.generated.chain, steady.pi);
    job.entry.yearly_downtime_min =
        yearly_downtime_minutes(job.entry.availability);
    job.entry.eq_failure_rate =
        markov::equivalent_failure_rate(job.generated.chain, steady.pi);
    job.entry.chain =
        std::make_shared<const markov::Ctmc>(std::move(job.generated.chain));
    job.entry.signature = job.chain_sig;
    if (opts.cache) {
      cache::CachedBlockSolve value;
      value.chain = job.entry.chain;
      value.initial = job.entry.initial;
      value.pi = std::make_shared<const linalg::Vector>(steady.pi);
      value.availability = job.entry.availability;
      value.eq_failure_rate = job.entry.eq_failure_rate;
      value.trace = job.entry.solve_trace;
      opts.cache->put_block(job.key, value);
    }
  }

  if (batch_span.active()) {
    std::size_t batched = 0;
    for (const auto& group : groups) {
      if (group.size() >= 2) batched += group.size();
    }
    batch_span.set_detail("points=" + std::to_string(specs.size()) +
                          " jobs=" + std::to_string(jobs.size()) +
                          " batched=" + std::to_string(batched));
  }

  // Assemble the per-point models in order, so kFresh lands on each job's
  // lowest-index consumer exactly as sequential rebuilds through the memo
  // cache would record it (without a cache every consumer solves fresh in
  // the sequential path, so every consumer stays kFresh).
  std::vector<BatchPointResult> out;
  out.reserve(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    Point& point = points[p];
    BatchPointResult result;
    if (degrade && point.status != robust::PointStatus::kOk) {
      result.status = point.status;
      result.detail = std::move(point.detail);
      out.push_back(std::move(result));
      continue;
    }
    if (point.full_build) {
      if (!degrade) {
        result.model.emplace(build(std::move(specs[p]), opts));
      } else if (stop.valid() && stop.stop_requested()) {
        result.status = robust::point_status_from(stop.reason());
        result.detail = std::string("full build skipped (") +
                        robust::to_string(stop.reason()) + ")";
      } else {
        try {
          result.model.emplace(build(std::move(specs[p]), opts));
        } catch (...) {
          std::tie(result.status, result.detail) =
              robust::point_status_from_exception(std::current_exception());
        }
      }
      out.push_back(std::move(result));
      continue;
    }
    if (degrade) {
      // The point completes only if every job feeding it finished; the
      // lowest bad slot's status is the point's provenance (deterministic
      // regardless of solve scheduling).
      std::size_t bad_slot = std::numeric_limits<std::size_t>::max();
      for (const Job& job : jobs) {
        if (job.status == robust::PointStatus::kOk && job.solved) continue;
        if (job.from_cache) continue;
        for (const auto& [jp, slot] : job.sites) {
          if (jp == p && slot < bad_slot) {
            bad_slot = slot;
            result.status = job.status != robust::PointStatus::kOk
                                ? job.status
                                : robust::PointStatus::kFailed;
            result.detail =
                job.detail.empty() ? "solve did not run" : job.detail;
          }
        }
      }
      if (result.status != robust::PointStatus::kOk) {
        out.push_back(std::move(result));
        continue;
      }
    }
    SystemModel sm;
    sm.opts_ = opts;
    sm.solver_sig_ = solver_sig;
    sm.blocks_ = std::move(point.blocks);
    for (Job& job : jobs) {
      for (const auto& [jp, slot] : job.sites) {
        if (jp != p) continue;
        BlockEntry entry = job.entry;
        entry.diagram = point.pending[slot].first->name;
        entry.block = *point.pending[slot].second;
        if (!job.from_cache) {
          if (!job.fresh_consumed || !opts.cache) {
            entry.solve_trace.source = resilience::SolveSource::kFresh;
            job.fresh_consumed = true;
          } else {
            entry.solve_trace.source = resilience::SolveSource::kCacheHit;
          }
        }
        sm.blocks_[slot] = std::move(entry);
      }
    }
    sm.spec_ = std::move(specs[p]);
    sm.root_ = compose_tree(sm.spec_, sm.blocks_);
    result.model.emplace(std::move(sm));
    out.push_back(std::move(result));
  }
  return out;
}

double SystemModel::eq_failure_rate() const {
  double acc = 0.0;
  for (const auto& b : blocks_) acc += b.eq_failure_rate;
  return acc;
}

double SystemModel::mtbf_h() const {
  const double rate = eq_failure_rate();
  return rate > 0.0 ? 1.0 / rate : 0.0;
}

double SystemModel::interval_availability(double horizon) const {
  obs::Span span("system.interval_availability");
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(
        "SystemModel::interval_availability: horizon must be positive");
  }
  // Precompute each block's point-availability curve on a shared grid; the
  // transient solves are independent, so they run in parallel by index.
  std::vector<std::shared_ptr<const linalg::Vector>> sampled(blocks_.size());
  exec::parallel_for(
      blocks_.size(),
      [&](std::size_t i) {
        const auto& b = blocks_[i];
        sampled[i] = sample_curve_cached(
            b, kCurveAvailability, horizon, opts_.curve_steps, opts_.cache,
            [&] {
              const linalg::Vector pi0 =
                  markov::point_mass(*b.chain, b.initial);
              return markov::reward_curve(*b.chain, pi0, horizon,
                                          opts_.curve_steps);
            });
      },
      opts_.parallel);
  std::unordered_map<std::string, std::shared_ptr<const linalg::Vector>>
      curves;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    curves.emplace(block_key(blocks_[i].diagram, blocks_[i].block.name),
                   sampled[i]);
  }
  TreeBuilder builder(
      spec_, [&](const spec::DiagramSpec& diagram,
                 const spec::BlockSpec& block) -> rbd::RbdNodePtr {
        const auto it = curves.find(block_key(diagram.name, block.name));
        if (it == curves.end()) {
          throw std::logic_error("SystemModel: missing curve for block '" +
                                 block.name + "'");
        }
        const double steady = (*it->second).back();
        return rbd::RbdNode::leaf(block.name, steady,
                                  interpolate(it->second, horizon));
      });
  const rbd::RbdNodePtr tree = builder.build(spec_.root());
  return tree->interval_availability(horizon, opts_.curve_steps);
}

namespace {

rbd::RbdNodePtr reliability_tree(
    const spec::ModelSpec& model,
    const std::vector<SystemModel::BlockEntry>& blocks, double horizon,
    std::size_t steps, const exec::ParallelOptions& par,
    cache::SolveCache* cache) {
  std::vector<std::shared_ptr<const linalg::Vector>> sampled(blocks.size());
  exec::parallel_for(
      blocks.size(),
      [&](std::size_t i) {
        const auto& b = blocks[i];
        sampled[i] = sample_curve_cached(
            b, kCurveReliability, horizon, steps, cache, [&] {
              const markov::Ctmc rel =
                  markov::make_down_states_absorbing(*b.chain);
              if (rel.down_states().empty()) {
                // Block cannot fail; survival is identically 1.
                return linalg::Vector(steps + 1, 1.0);
              }
              const linalg::Vector pi0 = markov::point_mass(rel, b.initial);
              // Survival = probability mass on transient states; reward 1 on
              // up transient states equals survival because absorbed states
              // are down.
              return markov::reward_curve(rel, pi0, horizon, steps);
            });
      },
      par);
  std::unordered_map<std::string, std::shared_ptr<const linalg::Vector>>
      curves;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    curves.emplace(block_key(blocks[i].diagram, blocks[i].block.name),
                   sampled[i]);
  }
  TreeBuilder builder(
      model, [&](const spec::DiagramSpec& diagram,
                 const spec::BlockSpec& block) -> rbd::RbdNodePtr {
        const auto it = curves.find(block_key(diagram.name, block.name));
        if (it == curves.end()) {
          throw std::logic_error("SystemModel: missing reliability curve");
        }
        return rbd::RbdNode::leaf(block.name, 1.0, nullptr,
                                  interpolate(it->second, horizon));
      });
  return builder.build(model.root());
}

}  // namespace

double SystemModel::reliability(double horizon) const {
  obs::Span span("system.reliability");
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(
        "SystemModel::reliability: horizon must be positive");
  }
  return reliability_tree(spec_, blocks_, horizon, opts_.curve_steps,
                          opts_.parallel, opts_.cache)
      ->reliability(horizon);
}

double SystemModel::mttf_numeric_h(double horizon) const {
  if (!(horizon > 0.0)) {
    throw std::invalid_argument(
        "SystemModel::mttf_numeric_h: horizon must be positive");
  }
  const std::size_t steps = std::max<std::size_t>(opts_.curve_steps, 1024);
  return reliability_tree(spec_, blocks_, horizon, steps, opts_.parallel,
                          opts_.cache)
      ->mttf_numeric(horizon, steps);
}

double SystemModel::availability_with_override(const std::string& diagram,
                                               const std::string& block,
                                               double value) const {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument(
        "availability_with_override: value outside [0, 1]");
  }
  bool found = false;
  for (const auto& b : blocks_) {
    if (b.diagram == diagram && b.block.name == block) found = true;
  }
  if (!found) {
    throw std::invalid_argument("availability_with_override: no block '" +
                                block + "' in diagram '" + diagram + "'");
  }
  TreeBuilder builder(
      spec_, [&](const spec::DiagramSpec& d,
                 const spec::BlockSpec& blk) -> rbd::RbdNodePtr {
        if (d.name == diagram && blk.name == block) {
          return rbd::RbdNode::leaf(blk.name, value);
        }
        for (const auto& entry : blocks_) {
          if (entry.diagram == d.name && entry.block.name == blk.name) {
            return rbd::RbdNode::leaf(blk.name, entry.availability);
          }
        }
        throw std::logic_error(
            "availability_with_override: missing solved block '" + blk.name +
            "'");
      });
  return builder.build(spec_.root())->availability();
}

std::size_t SystemModel::total_states() const {
  std::size_t acc = 0;
  for (const auto& b : blocks_) acc += b.chain->size();
  return acc;
}

std::size_t SystemModel::total_transitions() const {
  std::size_t acc = 0;
  for (const auto& b : blocks_) acc += b.chain->transition_count();
  return acc;
}

}  // namespace rascad::mg
