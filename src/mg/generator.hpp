// Automatic Markov-model generation from MG block specifications — the
// paper's core contribution (Section 4).
//
// Each block is translated into one of six chain families:
//   Type 0           N == K, no redundancy (paper Figure 3)
//   Types 1..4       N > K, the four combinations of
//                    {transparent, nontransparent} recovery x repair,
//                    with Type 3 drawn in the paper's Figure 4
//   PrimaryStandby   the paper's announced work-in-progress, implemented
//                    here as an extension (two-node failover cluster)
//
// The redundancy depth M = N - K determines the number of generated
// degradation levels; states TF/AR/PF/Latent repeat per level exactly as
// the paper describes for N - K > 1. The full transition rules, including
// the [inferred] reconstructions of details not pinned down by the paper's
// prose, are documented in DESIGN.md Section 4 and asserted by the test
// suite.
#pragma once

#include <string>

#include "cache/signature.hpp"
#include "markov/ctmc.hpp"
#include "spec/ast.hpp"

namespace rascad::mg {

enum class MarkovModelType {
  kType0,
  kType1,  // transparent recovery, transparent repair
  kType2,  // transparent recovery, nontransparent repair
  kType3,  // nontransparent recovery, transparent repair
  kType4,  // nontransparent recovery, nontransparent repair
  kPrimaryStandby,
};

std::string to_string(MarkovModelType type);

/// Chain family the generator will emit for this block.
MarkovModelType classify(const spec::BlockSpec& block);

/// Rates and mean durations derived from block + global parameters, all in
/// hours (the chain's time unit). Exposed so tests and baselines can check
/// the arithmetic independently of chain structure.
struct DerivedRates {
  double lambda_p = 0.0;    // permanent failure rate per component (1/h)
  double lambda_t = 0.0;    // transient failure rate per component (1/h)
  double mttr_h = 0.0;      // sum of the three MTTR parts
  double t_resp_h = 0.0;    // service response time
  double mttm_h = 0.0;      // service restriction time (deferred repair)
  double mttrfid_h = 0.0;   // repair from incorrect diagnosis
  double t_boot_h = 0.0;    // reboot time
  double ar_time_h = 0.0;   // nontransparent AR downtime
  double t_spf_h = 0.0;     // SPF-state dwell
  double reint_h = 0.0;     // nontransparent reintegration downtime
  double mttdlf_h = 0.0;    // latent-fault detection time
  double failover_h = 0.0;  // primary/standby failover downtime

  /// Deferred-repair cycle mean: MTTM + Tresp + MTTR (repair of a
  /// redundant component scheduled at the operator's convenience).
  double deferred_repair_h() const { return mttm_h + t_resp_h + mttr_h; }
  /// Immediate-repair cycle mean: Tresp + MTTR (system-down emergency).
  double immediate_repair_h() const { return t_resp_h + mttr_h; }
};

DerivedRates derive_rates(const spec::BlockSpec& block,
                          const spec::GlobalParams& globals);

/// A generated block model: the chain plus bookkeeping used by measures.
struct GeneratedModel {
  markov::Ctmc chain;
  MarkovModelType type = MarkovModelType::kType0;
  markov::StateIndex initial = 0;  // the fully-up state
  std::string block_name;
};

/// Reward structure for generated chains.
enum class RewardKind {
  /// 1 on up states, 0 on down states: the availability model (default).
  kAvailability,
  /// Delivered capacity: level-i up states carry (N - i) / N, so the
  /// expected reward is a performability measure (Meyer-style; the
  /// paper's references [1, 4, 6]) rather than plain availability.
  /// Degraded levels count their missing components even when the block
  /// still meets its K-of-N service requirement.
  kCapacity,
};

struct GenerationOptions {
  RewardKind reward = RewardKind::kAvailability;
};

/// Generates the Markov chain for one block. The block must have its own
/// failure behaviour (mtbf or transient_rate positive); blocks that only
/// wrap a subdiagram are handled at the hierarchy level. Throws
/// std::invalid_argument on specs the generator cannot express.
GeneratedModel generate(const spec::BlockSpec& block,
                        const spec::GlobalParams& globals,
                        const GenerationOptions& options);
GeneratedModel generate(const spec::BlockSpec& block,
                        const spec::GlobalParams& globals);

/// Canonical bit-exact signature of the chain `generate` would emit:
/// model family, (N, K), the DerivedRates, and the branching
/// probabilities / transparencies — with every field the generator
/// provably ignores for this family masked to a canonical value. Two
/// blocks with equal signatures generate bit-identical chains (same
/// states, rewards, and transition rates); editing a parameter — or a
/// global — that does not reach a block's rates leaves its signature
/// unchanged, which is what makes incremental rebuilds and global-sweep
/// reuse precise. The masking rules are documented in docs/caching.md
/// and asserted by cache_test.cpp.
cache::Signature chain_signature(const spec::BlockSpec& block,
                                 const spec::GlobalParams& globals,
                                 const GenerationOptions& options = {});

}  // namespace rascad::mg
