// Block-level RAS measures computed from a generated chain — the measure
// list of the paper's Section 4 (steady-state and interval availability,
// failure and recovery rates, MTTF, reliability at the mission time,
// hazard rate over a time increment).
#pragma once

#include <optional>

#include "markov/steady_state.hpp"
#include "mg/generator.hpp"
#include "resilience/resilience.hpp"
#include "spec/ast.hpp"

namespace rascad::mg {

/// Minutes of downtime per year implied by an availability.
double yearly_downtime_minutes(double availability);

struct MeasureOptions {
  markov::SteadyStateOptions steady;
  bool include_transient = true;  // interval availability at mission time
  bool include_reliability = true;  // MTTF, R(T), hazard
  double hazard_dt_h = 1.0;         // increment for the hazard estimate
  /// Resilience-ladder override. When unset, a config derived from
  /// `steady` is used (requested method first, remaining rungs appended).
  std::optional<resilience::ResilienceConfig> resilience;
};

struct BlockMeasures {
  double availability = 1.0;
  double yearly_downtime_min = 0.0;
  double eq_failure_rate = 0.0;   // per hour, steady state
  double eq_recovery_rate = 0.0;  // per hour, steady state
  /// Expected service interruptions per year: EFR * A * 8760.
  double outages_per_year = 0.0;

  // Interval measures over (0, mission_time).
  double interval_availability = 1.0;
  double interval_eq_failure_rate = 0.0;   // crossings / expected up time
  double interval_eq_recovery_rate = 0.0;  // crossings / expected down time

  // Reliability-model measures (down states absorbing).
  double mttf_h = 0.0;                 // 0 when the block cannot fail
  double reliability_at_mission = 1.0;
  double interval_failure_rate = 0.0;  // -ln R(T) / T
  double hazard_rate_at_mission = 0.0;

  /// Which steady-state ladder rung produced the numbers and why earlier
  /// rungs (if any) were rejected.
  resilience::SolveTrace solve_trace;
};

/// Solves the chain through the resilience ladder and assembles the
/// measure set. Throws resilience::SolveError only when every ladder rung
/// fails (structurally unusable chain or exhausted budget).
BlockMeasures compute_measures(const GeneratedModel& model,
                               const spec::GlobalParams& globals,
                               const MeasureOptions& opts = {});

}  // namespace rascad::mg
