#include "mg/explain.hpp"

#include <iomanip>
#include <sstream>

#include "mg/generator.hpp"

namespace rascad::mg {

std::string explain(const spec::BlockSpec& block,
                    const spec::GlobalParams& globals) {
  const MarkovModelType type = classify(block);
  const DerivedRates d = derive_rates(block, globals);
  const GeneratedModel model = generate(block, globals);

  std::ostringstream os;
  os << "block '" << block.name << "': " << to_string(type) << "\n";
  os << "  quantity N = " << block.quantity << ", required K = "
     << block.min_quantity;
  if (block.redundant()) {
    os << " -> " << block.quantity - block.min_quantity
       << " redundancy level(s); the PF/AR/TF/Latent state families repeat "
          "once per level";
  } else if (block.mode != spec::RedundancyMode::kPrimaryStandby) {
    os << " -> no redundancy: any component fault downs the block";
  }
  os << "\n";

  os << std::setprecision(6);
  if (d.lambda_p > 0.0) {
    os << "  permanent faults: MTBF " << block.mtbf_h << " h per component ("
       << d.lambda_p * 1e9 << " FIT); repair cycle "
       << d.immediate_repair_h() << " h hands-on";
    if (block.redundant()) {
      os << ", deferred by MTTM + Tresp to " << d.deferred_repair_h()
         << " h while redundancy holds";
    }
    os << "\n";
  } else {
    os << "  no permanent faults (mtbf = 0)\n";
  }
  if (d.lambda_t > 0.0) {
    os << "  transient faults: " << block.transient_fit
       << " FIT per component, cleared by a " << d.t_boot_h * 60.0
       << "-minute reboot\n";
  }
  if (block.redundant()) {
    os << "  recovery is "
       << (block.recovery == spec::Transparency::kTransparent
               ? "transparent: faults are masked with no downtime"
               : "nontransparent: each detected fault costs an AR window of " +
                     std::to_string(block.ar_time_min) + " min (down)")
       << "\n";
    os << "  repair is "
       << (block.repair == spec::Transparency::kTransparent
               ? "transparent: hot-plug + dynamic reconfiguration, no "
                 "reintegration downtime"
               : "nontransparent: reintegration restart of " +
                     std::to_string(block.reintegration_min) + " min (down)")
       << "\n";
    if (block.p_latent_fault > 0.0) {
      os << "  latent faults: " << block.p_latent_fault * 100.0
         << "% of permanent faults go undetected for " << block.mttdlf_h
         << " h on average (Latent states)\n";
    }
    if (block.p_spf > 0.0) {
      os << "  single-point-of-failure risk: " << block.p_spf * 100.0
         << "% of recoveries corrupt state and cost " << block.t_spf_min
         << " min (SPF states)\n";
    }
  }
  if (block.p_correct_diagnosis < 1.0 && d.lambda_p > 0.0) {
    os << "  imperfect service: " << (1.0 - block.p_correct_diagnosis) * 100.0
       << "% of repairs pull the wrong part, costing MTTRFID = "
       << globals.mttrfid_h << " h (ServiceError states)\n";
  }
  if (type == MarkovModelType::kPrimaryStandby) {
    os << "  failover: " << block.failover_time_min << " min, succeeds with "
       << "probability " << block.p_failover << "\n";
  }
  os << "  generated chain: " << model.chain.size() << " states, "
     << model.chain.transition_count() << " transitions, initial state '"
     << model.chain.state_name(model.initial) << "'\n";
  return os.str();
}

}  // namespace rascad::mg
