#include "mg/smp_generator.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "mg/generator.hpp"

namespace rascad::mg {

namespace {

using semimarkov::SmpBuilder;
using spec::BlockSpec;
using spec::GlobalParams;
using spec::Transparency;

constexpr double kUp = 1.0;
constexpr double kDown = 0.0;

struct Branch {
  std::size_t target;
  double probability;
};

/// A state whose sojourn is min(deterministic D, Exp(total exponential
/// rate)). `det_branches` fire if the deterministic event wins,
/// `exp_branches` (probabilities proportional to their rates) otherwise.
/// Degenerate cases (no exponential competitors, or D == 0 treated as "no
/// deterministic event") collapse correctly. The sojourn is stored as a
/// point mass at the exact mean — only the mean enters the steady-state
/// ratio formula.
void set_race(SmpBuilder& b, std::size_t state, double det_delay,
              const std::vector<Branch>& det_branches,
              const std::vector<std::pair<std::size_t, double>>& exp_arcs) {
  double total_rate = 0.0;
  for (const auto& [target, rate] : exp_arcs) total_rate += rate;

  if (det_delay <= 0.0 || det_branches.empty()) {
    if (total_rate <= 0.0) {
      throw std::invalid_argument("generate_smp: state with no exits");
    }
    b.set_exponential(state, exp_arcs);
    return;
  }
  if (total_rate <= 0.0) {
    b.set_sojourn(state, dist::deterministic(det_delay));
    for (const Branch& br : det_branches) {
      b.add_transition(state, br.target, br.probability);
    }
    return;
  }
  const double p_det = std::exp(-total_rate * det_delay);
  const double mean = (1.0 - p_det) / total_rate;
  b.set_sojourn(state, dist::deterministic(mean));
  for (const Branch& br : det_branches) {
    if (p_det * br.probability > 0.0) {
      b.add_transition(state, br.target, p_det * br.probability);
    }
  }
  for (const auto& [target, rate] : exp_arcs) {
    const double p = (1.0 - p_det) * rate / total_rate;
    if (p > 0.0) b.add_transition(state, target, p);
  }
}

/// Pure deterministic dwell with branch probabilities.
void set_dwell(SmpBuilder& b, std::size_t state, double delay,
               const std::vector<Branch>& branches) {
  b.set_sojourn(state, dist::deterministic(delay));
  for (const Branch& br : branches) {
    if (br.probability > 0.0) {
      b.add_transition(state, br.target, br.probability);
    }
  }
}

std::string level_name(const char* prefix, unsigned level) {
  return std::string(prefix) + std::to_string(level);
}

semimarkov::SemiMarkovProcess build_type0(const BlockSpec& block,
                                          const DerivedRates& d) {
  SmpBuilder b;
  const double n = static_cast<double>(block.quantity);
  const double pcd = block.p_correct_diagnosis;
  const bool imperfect = d.lambda_p > 0.0 && pcd < 1.0;

  const std::size_t ok = b.add_state("Ok", kUp);
  std::vector<std::pair<std::size_t, double>> ok_arcs;
  if (d.lambda_p > 0.0) {
    const std::size_t service = b.add_state("Service", kDown);
    std::size_t se = 0;
    if (imperfect) se = b.add_state("ServiceError", kDown);
    ok_arcs.push_back({service, n * d.lambda_p});
    std::vector<Branch> branches{{ok, pcd}};
    if (imperfect) branches.push_back({se, 1.0 - pcd});
    set_dwell(b, service, d.immediate_repair_h(), branches);
    if (imperfect) b.set_exponential(se, {{ok, 1.0 / d.mttrfid_h}});
  }
  if (d.lambda_t > 0.0) {
    const std::size_t tf = b.add_state("TF", kDown);
    ok_arcs.push_back({tf, n * d.lambda_t});
    set_dwell(b, tf, d.t_boot_h, {{ok, 1.0}});
  }
  b.set_exponential(ok, ok_arcs);
  return b.build();
}

/// Symmetric redundant semi-Markov refinement, mirroring the CTMC
/// generator's topology (see generator.cpp / DESIGN.md Section 4).
class RedundantSmpBuilder {
 public:
  RedundantSmpBuilder(const BlockSpec& block, const DerivedRates& d)
      : block_(block),
        d_(d),
        levels_(block.quantity - block.min_quantity),
        transparent_recovery_(block.recovery == Transparency::kTransparent),
        transparent_repair_(block.repair == Transparency::kTransparent),
        has_trans_(d.lambda_t > 0.0),
        has_latent_(block.p_latent_fault > 0.0),
        has_spf_(block.p_spf > 0.0),
        imperfect_(block.p_correct_diagnosis < 1.0) {}

  semimarkov::SemiMarkovProcess build() {
    create_states();
    wire_dwell_states();
    wire_level_states();
    return builder_.build();
  }

 private:
  void create_states() {
    const unsigned m = levels_;
    pf_.resize(m + 1);
    pf_[0] = builder_.add_state("Ok", kUp);
    for (unsigned i = 1; i <= m; ++i) {
      pf_[i] = builder_.add_state(level_name("PF", i), kUp);
    }
    pf_down_ = builder_.add_state(level_name("PF", m + 1), kDown);
    if (has_latent_) {
      latent_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        latent_[i] = builder_.add_state(level_name("Latent", i), kUp);
      }
    }
    if (!transparent_recovery_) {
      ar_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        ar_[i] = builder_.add_state(level_name("AR", i), kDown);
      }
    }
    if (has_spf_) {
      spf_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        spf_[i] = builder_.add_state(level_name("SPF", i), kDown);
      }
    }
    if (has_trans_ && !transparent_recovery_) {
      tf_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        tf_[i] = builder_.add_state(level_name("TF", i), kDown);
      }
    }
    if (has_trans_) {
      tf_down_ = builder_.add_state(level_name("TF", m + 1), kDown);
    }
    if (imperfect_) {
      se_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        se_[i] = builder_.add_state(level_name("SE", i), kDown);
      }
      se_down_ = builder_.add_state(level_name("SE", m + 1), kDown);
    }
    if (!transparent_repair_) {
      reint_.assign(m + 1, 0);
      for (unsigned i = 1; i <= m; ++i) {
        reint_[i] = builder_.add_state(level_name("Reint", i), kDown);
      }
    }
  }

  /// Deterministic dwell-only states: AR, TF, SPF, Reint, SE (exponential),
  /// and the bottom emergency-repair state.
  void wire_dwell_states() {
    const unsigned m = levels_;
    const double p_spf = has_spf_ ? block_.p_spf : 0.0;

    if (!transparent_recovery_) {
      for (unsigned i = 1; i <= m; ++i) {
        std::vector<Branch> branches{{pf_[i], 1.0 - p_spf}};
        if (has_spf_) branches.push_back({spf_[i], p_spf});
        set_dwell(builder_, ar_[i], d_.ar_time_h, branches);
      }
    }
    if (has_spf_) {
      for (unsigned i = 1; i <= m; ++i) {
        set_dwell(builder_, spf_[i], d_.t_spf_h, {{pf_[i], 1.0}});
      }
    }
    if (has_trans_) {
      if (!transparent_recovery_) {
        for (unsigned i = 1; i <= m; ++i) {
          std::vector<Branch> branches{{pf_[i - 1], 1.0 - p_spf}};
          if (has_spf_) branches.push_back({spf_[i], p_spf});
          set_dwell(builder_, tf_[i], d_.t_boot_h, branches);
        }
      }
      std::vector<Branch> branches{{pf_[m], 1.0 - p_spf}};
      if (has_spf_ && m >= 1) {
        branches.push_back({spf_[m], p_spf});
      } else {
        branches[0].probability = 1.0;
      }
      set_dwell(builder_, tf_down_, d_.t_boot_h, branches);
    }
    if (imperfect_) {
      for (unsigned i = 1; i <= m; ++i) {
        builder_.set_exponential(se_[i], {{pf_[i - 1], 1.0 / d_.mttrfid_h}});
      }
      builder_.set_exponential(se_down_, {{pf_[m], 1.0 / d_.mttrfid_h}});
    }
    if (!transparent_repair_) {
      for (unsigned i = 1; i <= m; ++i) {
        set_dwell(builder_, reint_[i], d_.reint_h, {{pf_[i - 1], 1.0}});
      }
    }
    // Bottom level: the emergency service action is a scheduled dwell.
    {
      const double pcd = block_.p_correct_diagnosis;
      std::vector<Branch> branches{{pf_[m], pcd}};
      if (imperfect_) branches.push_back({se_down_, 1.0 - pcd});
      set_dwell(builder_, pf_down_, d_.immediate_repair_h(), branches);
    }
  }

  /// Exponential fault arcs out of level i (same routing as the CTMC
  /// generator).
  std::vector<std::pair<std::size_t, double>> fault_arcs(unsigned i) {
    const unsigned m = levels_;
    const unsigned n = block_.quantity;
    const double good = static_cast<double>(n - i);
    const double perm = good * d_.lambda_p;
    const double trans = good * d_.lambda_t;
    const double plf = has_latent_ ? block_.p_latent_fault : 0.0;
    const double p_spf = has_spf_ ? block_.p_spf : 0.0;
    std::vector<std::pair<std::size_t, double>> arcs;

    if (i == m) {
      arcs.push_back({pf_down_, perm});
      if (has_trans_) arcs.push_back({tf_down_, trans});
      return arcs;
    }
    // Detected permanent fault.
    const double detected = perm * (1.0 - plf);
    if (transparent_recovery_) {
      if (detected * (1.0 - p_spf) > 0.0) {
        arcs.push_back({pf_[i + 1], detected * (1.0 - p_spf)});
      }
      if (has_spf_ && detected * p_spf > 0.0) {
        arcs.push_back({spf_[i + 1], detected * p_spf});
      }
    } else if (detected > 0.0) {
      arcs.push_back({ar_[i + 1], detected});
    }
    if (has_latent_ && perm * plf > 0.0) {
      arcs.push_back({latent_[i + 1], perm * plf});
    }
    // Transient fault.
    if (has_trans_) {
      if (!transparent_recovery_) {
        arcs.push_back({tf_[i + 1], trans});
      } else if (has_spf_ && trans * p_spf > 0.0) {
        arcs.push_back({spf_[i + 1], trans * p_spf});
      }
    }
    return arcs;
  }

  void wire_level_states() {
    const unsigned m = levels_;
    const double pcd = block_.p_correct_diagnosis;
    const double detect = has_latent_ ? 1.0 / d_.mttdlf_h : 0.0;
    const double p_spf = has_spf_ ? block_.p_spf : 0.0;

    // Ok: purely exponential.
    builder_.set_exponential(pf_[0], fault_arcs(0));

    // Degraded levels: deterministic repair completion racing the faults.
    for (unsigned i = 1; i <= m; ++i) {
      std::vector<Branch> repair_branches;
      repair_branches.push_back(
          {transparent_repair_ ? pf_[i - 1] : reint_[i], pcd});
      if (imperfect_) repair_branches.push_back({se_[i], 1.0 - pcd});
      set_race(builder_, pf_[i], d_.deferred_repair_h(), repair_branches,
               fault_arcs(i));
    }

    // Latent levels: detection + faults are exponential; the repair of
    // older detected faults (depth >= 2) is the deterministic race.
    if (has_latent_) {
      for (unsigned i = 1; i <= m; ++i) {
        auto arcs = fault_arcs(i);
        if (!transparent_recovery_) {
          arcs.push_back({ar_[i], detect});
        } else {
          if (detect * (1.0 - p_spf) > 0.0) {
            arcs.push_back({pf_[i], detect * (1.0 - p_spf)});
          }
          if (has_spf_ && detect * p_spf > 0.0) {
            arcs.push_back({spf_[i], detect * p_spf});
          }
        }
        if (i >= 2) {
          std::vector<Branch> repair_branches{{latent_[i - 1], pcd}};
          if (imperfect_) repair_branches.push_back({se_[i], 1.0 - pcd});
          set_race(builder_, latent_[i], d_.deferred_repair_h(),
                   repair_branches, arcs);
        } else {
          builder_.set_exponential(latent_[i], arcs);
        }
      }
    }
  }

  const BlockSpec& block_;
  const DerivedRates& d_;
  const unsigned levels_;
  const bool transparent_recovery_;
  const bool transparent_repair_;
  const bool has_trans_;
  const bool has_latent_;
  const bool has_spf_;
  const bool imperfect_;

  SmpBuilder builder_;
  std::vector<std::size_t> pf_;
  std::vector<std::size_t> latent_;
  std::vector<std::size_t> ar_;
  std::vector<std::size_t> spf_;
  std::vector<std::size_t> tf_;
  std::vector<std::size_t> se_;
  std::vector<std::size_t> reint_;
  std::size_t pf_down_ = 0;
  std::size_t tf_down_ = 0;
  std::size_t se_down_ = 0;
};

semimarkov::SemiMarkovProcess build_transient_only(const BlockSpec& block,
                                                   const DerivedRates& d) {
  SmpBuilder b;
  const std::size_t ok = b.add_state("Ok", kUp);
  const double rate = static_cast<double>(block.quantity) * d.lambda_t;
  const bool has_spf = block.p_spf > 0.0;
  std::size_t spf = 0;
  if (has_spf) spf = b.add_state("SPF1", kDown);
  if (block.recovery == Transparency::kTransparent) {
    if (!has_spf) {
      throw std::invalid_argument(
          "generate_smp: fully masked transient-only block has a single "
          "state; use the CTMC generator");
    }
    b.set_exponential(ok, {{spf, rate * block.p_spf}});
    set_dwell(b, spf, d.t_spf_h, {{ok, 1.0}});
    return b.build();
  }
  const std::size_t tf = b.add_state("TF1", kDown);
  b.set_exponential(ok, {{tf, rate}});
  std::vector<Branch> branches{{ok, 1.0 - block.p_spf}};
  if (has_spf) {
    branches.push_back({spf, block.p_spf});
    set_dwell(b, spf, d.t_spf_h, {{ok, 1.0}});
  } else {
    branches[0].probability = 1.0;
  }
  set_dwell(b, tf, d.t_boot_h, branches);
  return b.build();
}

}  // namespace

semimarkov::SemiMarkovProcess generate_smp(const spec::BlockSpec& block,
                                           const spec::GlobalParams& globals) {
  if (block.mode == spec::RedundancyMode::kPrimaryStandby) {
    throw std::invalid_argument(
        "generate_smp: primary/standby blocks are CTMC-only");
  }
  if (!block.has_own_failures()) {
    throw std::invalid_argument("generate_smp: block '" + block.name +
                                "' has no failure parameters");
  }
  const DerivedRates d = derive_rates(block, globals);
  if (!block.redundant()) return build_type0(block, d);
  if (d.lambda_p <= 0.0) return build_transient_only(block, d);
  return RedundantSmpBuilder(block, d).build();
}

double smp_availability(const spec::BlockSpec& block,
                        const spec::GlobalParams& globals) {
  return generate_smp(block, globals).steady_state_reward();
}

}  // namespace rascad::mg
