#include "mg/measures.hpp"

#include <cmath>
#include <utility>

#include "markov/absorbing.hpp"
#include "markov/transient.hpp"

namespace rascad::mg {

double yearly_downtime_minutes(double availability) {
  // 365 days * 24 h * 60 min.
  return (1.0 - availability) * 525'600.0;
}

BlockMeasures compute_measures(const GeneratedModel& model,
                               const spec::GlobalParams& globals,
                               const MeasureOptions& opts) {
  BlockMeasures m;
  const markov::Ctmc& chain = model.chain;
  const resilience::ResilienceConfig config =
      opts.resilience ? *opts.resilience
                      : resilience::config_from(opts.steady);
  resilience::ResilientResult solved =
      resilience::solve_steady_state_resilient(chain, config);
  m.solve_trace = std::move(solved.trace);
  const markov::SteadyStateResult& steady = solved.result;
  m.availability = markov::expected_reward(chain, steady.pi);
  m.yearly_downtime_min = yearly_downtime_minutes(m.availability);
  m.eq_failure_rate = markov::equivalent_failure_rate(chain, steady.pi);
  m.eq_recovery_rate = markov::equivalent_recovery_rate(chain, steady.pi);
  m.outages_per_year = m.eq_failure_rate * m.availability * 8760.0;

  const bool can_fail = !chain.down_states().empty();
  const double mission = globals.mission_time_h;
  const linalg::Vector pi0 = markov::point_mass(chain, model.initial);

  if (opts.include_transient && can_fail && mission > 0.0) {
    m.interval_availability =
        markov::interval_availability(chain, pi0, mission);
    m.interval_eq_failure_rate =
        markov::interval_failure_rate(chain, pi0, mission);
    m.interval_eq_recovery_rate =
        markov::interval_recovery_rate(chain, pi0, mission);
  }

  if (opts.include_reliability && can_fail) {
    const markov::Ctmc rel = markov::make_down_states_absorbing(chain);
    m.mttf_h = resilience::mttf_resilient(chain, model.initial, config);
    if (mission > 0.0) {
      m.reliability_at_mission = markov::reliability_at(rel, pi0, mission);
      if (m.reliability_at_mission > 0.0) {
        m.interval_failure_rate =
            -std::log(m.reliability_at_mission) / mission;
      } else {
        m.interval_failure_rate =
            m.mttf_h > 0.0 ? 1.0 / m.mttf_h : 0.0;
      }
      m.hazard_rate_at_mission =
          markov::hazard_rate(rel, pi0, mission, opts.hazard_dt_h);
    }
  }
  return m;
}

}  // namespace rascad::mg
