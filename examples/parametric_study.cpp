// Parametric analysis (the paper's "graphical output and parametric
// analysis capability"): sweep design parameters of a midrange server and
// print availability curves as ASCII tables/plots, the text equivalent of
// RAScad's graphs.
#include <iomanip>
#include <iostream>
#include <string>

#include "core/library.hpp"
#include "core/sweep.hpp"

namespace {

void plot(const std::vector<rascad::core::SweepPoint>& points,
          const std::string& x_label) {
  double lo = points.front().yearly_downtime_min;
  double hi = lo;
  for (const auto& p : points) {
    lo = std::min(lo, p.yearly_downtime_min);
    hi = std::max(hi, p.yearly_downtime_min);
  }
  const double span = std::max(hi - lo, 1e-9);
  std::cout << "  " << std::left << std::setw(12) << x_label << std::right
            << std::setw(12) << "downtime" << "  (min/year)\n";
  for (const auto& p : points) {
    const int bars =
        1 + static_cast<int>(49.0 * (p.yearly_downtime_min - lo) / span);
    std::cout << "  " << std::left << std::setw(12) << std::setprecision(6)
              << p.value << std::right << std::setw(12) << std::fixed
              << std::setprecision(2) << p.yearly_downtime_min << "  "
              << std::string(static_cast<std::size_t>(bars), '#') << '\n';
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  const auto base = rascad::core::library::midrange_server();
  std::cout << "=== Parametric analysis: " << base.title << " ===\n\n";

  std::cout << "1. CPU MTBF (log sweep)\n";
  plot(rascad::core::sweep_block_parameter(
           base, "Midrange Server", "CPU Module",
           [](rascad::spec::BlockSpec& b, double v) { b.mtbf_h = v; },
           rascad::core::logspace(50'000.0, 2'000'000.0, 7)),
       "MTBF (h)");

  std::cout << "2. Disk corrective-action time\n";
  plot(rascad::core::sweep_block_parameter(
           base, "Midrange Server", "Mirrored Disk",
           [](rascad::spec::BlockSpec& b, double v) {
             b.mttr_corrective_min = v;
           },
           rascad::core::linspace(10.0, 480.0, 7)),
       "MTTR (min)");

  std::cout << "3. Probability of correct diagnosis (all-blocks quality "
               "lever on the CPU)\n";
  plot(rascad::core::sweep_block_parameter(
           base, "Midrange Server", "CPU Module",
           [](rascad::spec::BlockSpec& b, double v) {
             b.p_correct_diagnosis = v;
           },
           rascad::core::linspace(0.7, 1.0, 7)),
       "Pcd");

  std::cout << "4. Service restriction time (global MTTM)\n";
  plot(rascad::core::sweep_global_parameter(
           base,
           [](rascad::spec::GlobalParams& g, double v) { g.mttm_h = v; },
           rascad::core::linspace(0.0, 168.0, 8)),
       "MTTM (h)");

  std::cout << "5. Reboot time (global Tboot) — the nontransparent-recovery "
               "cost lever\n";
  plot(rascad::core::sweep_global_parameter(
           base,
           [](rascad::spec::GlobalParams& g, double v) {
             g.reboot_time_h = v / 60.0;
           },
           rascad::core::linspace(2.0, 40.0, 7)),
       "Tboot (min)");

  return 0;
}
