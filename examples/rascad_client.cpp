// rascad_client — command-line harness for a running rascad_serve daemon.
//
//   rascad_client <socket> ping [deadline_ms [sleep_ms]]
//   rascad_client <socket> solve <model.rsc> [deadline_ms]
//   rascad_client <socket> sweep <model.rsc> <diagram> <block> <param>
//                          <lo> <hi> <points> [deadline_ms]
//   rascad_client <socket> simulate <model.rsc> <horizon_h> <reps> <seed>
//                          [deadline_ms]
//   rascad_client <socket> stats
//   rascad_client <socket> metrics [delta]
//   rascad_client <socket> watch [interval_ms [ticks [deadline_ms]]]
//   rascad_client <socket> shutdown
//
// Exit codes: 0 ok, 1 error reply / degraded result, 2 usage,
// 3 rejected (admission queue full).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "robust/cancel.hpp"
#include "serve/client.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: rascad_client <socket> ping [deadline_ms [sleep_ms]]\n"
         "       rascad_client <socket> solve <model.rsc> [deadline_ms]\n"
         "       rascad_client <socket> sweep <model.rsc> <diagram> <block>"
         " <param> <lo> <hi> <points> [deadline_ms]\n"
         "       rascad_client <socket> simulate <model.rsc> <horizon_h>"
         " <reps> <seed> [deadline_ms]\n"
         "       rascad_client <socket> stats | shutdown\n"
         "       rascad_client <socket> metrics [delta]\n"
         "       rascad_client <socket> watch [interval_ms [ticks"
         " [deadline_ms]]]\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rascad_client: cannot read " << path << '\n';
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int report(const rascad::serve::Reply& reply) {
  if (!reply.stream.empty()) std::cout << reply.stream;
  if (reply.rejected()) {
    std::cerr << "rejected: " << reply.text << " (retry after "
              << reply.retry_after_ms << " ms)\n";
    return 3;
  }
  if (reply.type == rascad::serve::FrameType::kError) {
    std::cerr << "error (" << rascad::robust::to_string(reply.status)
              << "): " << reply.text << '\n';
    return 1;
  }
  std::cout << reply.text;
  if (reply.degraded()) {
    std::cerr << "degraded: " << rascad::robust::to_string(reply.status)
              << '\n';
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string socket_path = argv[1];
  const std::string verb = argv[2];
  const auto u32 = [&](int i, std::uint32_t fallback) {
    return i < argc ? static_cast<std::uint32_t>(std::atoll(argv[i]))
                    : fallback;
  };

  rascad::serve::Client client;
  try {
    client.connect_retry(socket_path, 2000.0);
    if (verb == "ping") {
      const auto reply = client.ping(u32(3, 0), u32(4, 0));
      if (reply.ok()) std::cout << "pong\n";
      return report(reply);
    }
    if (verb == "solve" && argc >= 4) {
      return report(client.solve(slurp(argv[3]), u32(4, 0)));
    }
    if (verb == "sweep" && argc >= 10) {
      return report(client.sweep(slurp(argv[3]), argv[4], argv[5], argv[6],
                                 std::atof(argv[7]), std::atof(argv[8]),
                                 static_cast<std::size_t>(std::atoll(argv[9])),
                                 u32(10, 0)));
    }
    if (verb == "simulate" && argc >= 7) {
      return report(client.simulate(slurp(argv[3]), std::atof(argv[4]),
                                    static_cast<std::size_t>(
                                        std::atoll(argv[5])),
                                    static_cast<std::uint64_t>(
                                        std::atoll(argv[6])),
                                    u32(7, 0)));
    }
    if (verb == "stats") return report(client.stats());
    if (verb == "metrics") {
      const bool delta = argc >= 4 && std::string(argv[3]) == "delta";
      return report(client.metrics(delta));
    }
    if (verb == "watch") {
      // Chunks print as they arrive (live JSONL telemetry on stdout); the
      // terminal summary goes through report() like every other verb.
      auto reply = client.watch(
          u32(3, 1000), u32(4, 5), u32(5, 0),
          [](std::string_view chunk) { std::cout << chunk << std::flush; });
      reply.stream.clear();  // already printed incrementally
      return report(reply);
    }
    if (verb == "shutdown") return report(client.request_shutdown());
  } catch (const std::exception& e) {
    std::cerr << "rascad_client: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
