# A three-tier web shop, written by hand in the engineering language.
title = "Web Shop"

globals {
  reboot_time  = 6 min
  mttm         = 24 h
  mttrfid      = 4 h
  mission_time = 8760 h
}

diagram "Web Shop" {
  block "Load Balancer Pair" {
    quantity = 2  min_quantity = 1
    mtbf = 120000 h
    mttr_corrective = 45 min  service_response = 4 h
    recovery = transparent  repair = transparent
  }
  block "App Server" { subdiagram = "App Server" }
  block "Database" { subdiagram = "Database" }
}

diagram "App Server" {
  block "Chassis" {
    mtbf = 400000 h
    mttr_corrective = 60 min  service_response = 4 h
  }
  block "CPU" {
    quantity = 4  min_quantity = 3
    mtbf = 500000 h  transient_rate = 2000 fit
    mttr_corrective = 30 min  service_response = 4 h
    recovery = nontransparent  ar_time = 5 min
    repair = transparent
  }
  block "Application Software" { transient_rate = 30000 fit }
}

diagram "Database" {
  block "DB Node Pair" {
    quantity = 2  min_quantity = 1
    mtbf = 40000 h  transient_rate = 20000 fit
    mttr_corrective = 90 min  service_response = 4 h
    mode = primary_standby
    failover_time = 2 min  p_failover = 0.99  t_spf = 30 min
    repair = transparent
  }
  block "Storage Array, RAID5" {
    quantity = 8  min_quantity = 7
    mtbf = 250000 h
    mttr_corrective = 30 min  service_response = 4 h
    recovery = transparent  repair = transparent
    p_latent_fault = 0.03  mttdlf = 24 h
  }
}
