// The paper's Figures 1-2 scenario: a Data Center System whose Server Box
// block expands into a 19-block subdiagram, plus mirrored boot drives and
// two RAID-5 arrays. Shows hierarchy traversal, per-block downtime
// decomposition, and what-if analysis on a single block.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/library.hpp"
#include "core/sweep.hpp"
#include "mg/system.hpp"
#include "obs/jsonl.hpp"

int main() {
  using rascad::mg::SystemModel;

  const auto spec = rascad::core::library::datacenter_system();
  const SystemModel system = SystemModel::build(spec);

  std::cout << "=== " << spec.title << " ===\n";
  std::cout << "level-1 blocks: " << spec.root().blocks.size()
            << ", Server Box subdiagram blocks: "
            << spec.find_diagram("Server Box")->blocks.size() << "\n\n";

  std::cout << std::fixed << std::setprecision(7);
  std::cout << "system availability : " << system.availability() << '\n';
  std::cout << std::setprecision(1);
  std::cout << "yearly downtime     : " << system.yearly_downtime_min()
            << " min\n";
  std::cout << "system MTBF         : " << system.mtbf_h() << " h\n";
  std::cout << "generated states    : " << system.total_states() << " across "
            << system.blocks().size() << " chains\n\n";

  // Downtime decomposition: which FRUs dominate the budget?
  std::vector<SystemModel::BlockEntry> blocks = system.blocks();
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) {
              return a.yearly_downtime_min > b.yearly_downtime_min;
            });
  std::cout << "top contributors to yearly downtime:\n";
  std::cout << std::left << std::setw(24) << "  block" << std::right
            << std::setw(12) << "min/year" << "  model type\n";
  for (std::size_t i = 0; i < blocks.size() && i < 8; ++i) {
    std::cout << "  " << std::left << std::setw(22) << blocks[i].block.name
              << std::right << std::setw(12) << std::setprecision(2)
              << blocks[i].yearly_downtime_min << "  "
              << rascad::mg::to_string(blocks[i].type) << '\n';
  }

  // What-if: the centerplane is the single point of failure — how much
  // does a faster field service contract help?
  std::cout << "\nwhat-if: centerplane service response time\n";
  const auto points = rascad::core::sweep_block_parameter(
      spec, "Server Box", "Centerplane",
      [](rascad::spec::BlockSpec& b, double v) { b.service_response_h = v; },
      {1.0, 2.0, 4.0, 8.0, 24.0});
  for (const auto& p : points) {
    std::cout << "  Tresp = " << std::setw(4) << std::setprecision(0) << p.value
              << " h  ->  downtime " << std::setw(7) << std::setprecision(2)
              << p.yearly_downtime_min << " min/year\n";
  }
  // One JSONL trace of the whole run when RASCAD_OBS=1.
  rascad::obs::dump_if_enabled();
  return 0;
}
