// The paper's field-validation scenario (Section 5): compare the analytic
// model prediction for an E10000-class server against "field data" — here,
// a discrete-event simulation of two such servers observed for 15 months,
// both with the exponential assumptions of the chain and with realistic
// non-exponential repair/logistics distributions.
#include <iomanip>
#include <iostream>

#include "core/library.hpp"
#include "mg/system.hpp"
#include "sim/system_sim.hpp"

int main() {
  const auto spec = rascad::core::library::e10000_like();
  const auto system = rascad::mg::SystemModel::build(spec);

  const double months15 = 15.0 * 730.0;  // hours
  const double analytic_a = system.availability();
  const double analytic_dt15 = (1.0 - analytic_a) * months15 * 60.0;

  std::cout << "=== " << spec.title << ": model vs simulated field data ===\n";
  std::cout << std::fixed << std::setprecision(7);
  std::cout << "analytic availability        : " << analytic_a << '\n';
  std::cout << std::setprecision(1);
  std::cout << "analytic downtime / 15 months: " << analytic_dt15
            << " min\n\n";

  // Two servers x 15 months, many monitoring "campaigns" for confidence
  // intervals. Exponential mode reproduces the chain's assumptions.
  for (const bool exponential : {true, false}) {
    rascad::sim::BlockSimOptions opts;
    opts.exponential_everything = exponential;
    rascad::sim::SampleStats availability;
    rascad::sim::SampleStats downtime_min;
    const int campaigns = 40;
    for (int c = 0; c < campaigns; ++c) {
      for (int server = 0; server < 2; ++server) {
        const auto r = rascad::sim::simulate_system(
            spec, months15, 1'000'003 * (c + 1) + server, opts);
        availability.add(r.availability());
        downtime_min.add(r.downtime_minutes());
      }
    }
    const auto ci = downtime_min.confidence_interval();
    std::cout << (exponential ? "exponential field model"
                              : "lognormal/deterministic field model")
              << " (2 servers x 15 months x " << campaigns
              << " campaigns):\n";
    std::cout << "  observed downtime / 15 months: " << std::setprecision(1)
              << downtime_min.mean() << " min  (95% CI [" << ci.lo << ", "
              << ci.hi << "])\n";
    std::cout << "  observed availability        : " << std::setprecision(7)
              << availability.mean() << '\n';
    const double rel_err =
        std::abs(downtime_min.mean() - analytic_dt15) / analytic_dt15;
    std::cout << "  relative downtime error vs model: " << std::setprecision(3)
              << rel_err * 100.0 << " %\n\n";
  }
  std::cout << "(the paper reports model-vs-field agreement for two E10000\n"
               " servers over 15 months; with the exponential field model the\n"
               " error is pure sampling noise, and the non-exponential model\n"
               " shows the robustness of the mean-based chain abstraction)\n";
  return 0;
}
