// rascad_serve — the long-running solve daemon.
//
//   rascad_serve <socket> [options]
//
//   --queue N           admission queue capacity (default 64)
//   --retry-after MS    backoff hint in kRetryAfter frames (default 25)
//   --deadline MS       default per-request deadline when the client sends
//                       none (default: no deadline)
//   --cache N           SolveCache capacity for blocks and curves
//   --obs-append PATH   drain + append the obs trace to PATH after every
//                       request (needs RASCAD_OBS=1)
//   --run-for MS        exit after MS even without a shutdown request
//                       (harness aid; default: run until kShutdown/SIGINT)
//
// The daemon runs until a client sends kShutdown or SIGINT/SIGTERM
// arrives, then drains in-flight requests and exits 0.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/jsonl.hpp"
#include "serve/service.hpp"

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

int usage() {
  std::cerr << "usage: rascad_serve <socket> [--queue N] [--retry-after MS]\n"
               "                    [--deadline MS] [--cache N]\n"
               "                    [--obs-append PATH] [--run-for MS]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  rascad::serve::ServiceConfig cfg;
  cfg.socket_path = argv[1];
  double run_for_ms = 0.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "rascad_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--queue") {
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--retry-after") {
      cfg.retry_after_ms = std::atof(value());
    } else if (arg == "--deadline") {
      cfg.default_deadline_ms = std::atof(value());
    } else if (arg == "--cache") {
      const auto n = static_cast<std::size_t>(std::atoll(value()));
      cfg.cache_block_capacity = n;
      cfg.cache_curve_capacity = n;
    } else if (arg == "--obs-append") {
      cfg.obs_append_path = value();
    } else if (arg == "--run-for") {
      run_for_ms = std::atof(value());
    } else {
      return usage();
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  rascad::serve::Service service(cfg);
  try {
    service.start();
  } catch (const std::exception& e) {
    std::cerr << "rascad_serve: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "rascad_serve: listening on " << cfg.socket_path << '\n';

  // Wait for a shutdown request in short slices so signals are noticed
  // promptly; --run-for bounds the whole wait for test harnesses.
  double waited_ms = 0.0;
  while (!service.shutdown_requested() && !g_interrupted.load()) {
    service.wait_shutdown_requested(50.0);
    waited_ms += 50.0;
    if (run_for_ms > 0.0 && waited_ms >= run_for_ms) break;
  }

  service.stop();
  const auto stats = service.stats();
  std::cerr << "rascad_serve: done (accepted=" << stats.accepted
            << " rejected=" << stats.rejected
            << " completed=" << stats.completed << " failed=" << stats.failed
            << " cache hits=" << stats.cache_blocks.hits << ")\n";
  rascad::obs::dump_if_enabled();
  return 0;
}
