// The paper's work-in-progress feature, implemented here as an extension:
// primary/standby (cluster) model generation. Compares a two-node failover
// cluster against a single node and against symmetric 2N redundancy, and
// shows the sensitivity to failover quality.
#include <iomanip>
#include <iostream>

#include "core/library.hpp"
#include "markov/steady_state.hpp"
#include "mg/generator.hpp"
#include "mg/system.hpp"

namespace {

double availability_of(const rascad::spec::BlockSpec& b,
                       const rascad::spec::GlobalParams& g) {
  const auto model = rascad::mg::generate(b, g);
  const auto r = rascad::markov::solve_steady_state(model.chain);
  return rascad::markov::expected_reward(model.chain, r.pi);
}

}  // namespace

int main() {
  rascad::spec::GlobalParams g;

  // A node: MTBF 30,000 h for hardware+software combined, panics at
  // 25,000 FIT, 1.5 h hands-on repair.
  rascad::spec::BlockSpec node;
  node.name = "Node";
  node.quantity = 1;
  node.min_quantity = 1;
  node.mtbf_h = 30'000.0;
  node.transient_fit = 25'000.0;
  node.mttr_corrective_min = 90.0;
  node.service_response_h = 4.0;
  node.p_correct_diagnosis = 0.98;

  std::cout << "=== Primary/standby cluster generation (extension) ===\n\n";
  std::cout << std::fixed << std::setprecision(1);

  const double single = availability_of(node, g);
  std::cout << "single node            : downtime "
            << (1 - single) * 525'600.0 << " min/year\n";

  // Two-node failover cluster.
  rascad::spec::BlockSpec cluster = node;
  cluster.name = "Cluster";
  cluster.quantity = 2;
  cluster.min_quantity = 1;
  cluster.mode = rascad::spec::RedundancyMode::kPrimaryStandby;
  cluster.failover_time_min = 3.0;
  cluster.p_failover = 0.98;
  cluster.t_spf_min = 45.0;
  cluster.repair = rascad::spec::Transparency::kTransparent;
  const double ps = availability_of(cluster, g);
  std::cout << "primary/standby pair   : downtime " << (1 - ps) * 525'600.0
            << " min/year\n";

  // Symmetric 1-of-2 with transparent recovery, for contrast.
  rascad::spec::BlockSpec symmetric = node;
  symmetric.name = "Symmetric";
  symmetric.quantity = 2;
  symmetric.min_quantity = 1;
  symmetric.recovery = rascad::spec::Transparency::kTransparent;
  symmetric.repair = rascad::spec::Transparency::kTransparent;
  const double sym = availability_of(symmetric, g);
  std::cout << "symmetric 1-of-2       : downtime " << (1 - sym) * 525'600.0
            << " min/year\n\n";

  std::cout << "failover-quality sensitivity (primary/standby):\n";
  for (double p : {0.80, 0.90, 0.95, 0.98, 0.995, 1.0}) {
    cluster.p_failover = p;
    const double a = availability_of(cluster, g);
    std::cout << "  p_failover = " << std::setprecision(3) << p
              << "  ->  downtime " << std::setprecision(1)
              << (1 - a) * 525'600.0 << " min/year\n";
  }
  for (double fo : {0.5, 1.0, 3.0, 10.0, 30.0}) {
    cluster.p_failover = 0.98;
    cluster.failover_time_min = fo;
    const double a = availability_of(cluster, g);
    std::cout << "  failover_time = " << std::setw(4) << std::setprecision(1)
              << fo << " min ->  downtime " << (1 - a) * 525'600.0
              << " min/year\n";
  }

  // The library's full cluster system (nodes + shared storage +
  // interconnect).
  const auto sys = rascad::mg::SystemModel::build(
      rascad::core::library::two_node_cluster());
  std::cout << "\nfull cluster system (library model): availability "
            << std::setprecision(7) << sys.availability() << ", downtime "
            << std::setprecision(1) << sys.yearly_downtime_min()
            << " min/year\n";
  return 0;
}
