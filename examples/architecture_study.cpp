// Architecture study: the end-to-end design workflow the paper's Section 2
// describes — assess an entry design, find the weak points with importance
// analysis, compare candidate upgrades side by side, and verify the chosen
// design against the simulator before committing.
#include <iomanip>
#include <iostream>

#include "core/compare.hpp"
#include "core/importance.hpp"
#include "core/library.hpp"
#include "mg/system.hpp"
#include "sim/system_sim.hpp"

int main() {
  using rascad::mg::SystemModel;

  std::cout << "=== Architecture study: entry -> midrange -> cluster ===\n\n";

  // Step 1: assess the current design.
  const auto entry_spec = rascad::core::library::entry_server();
  const auto entry = SystemModel::build(entry_spec);
  std::cout << "step 1 - current design (" << entry_spec.title << "): "
            << std::fixed << std::setprecision(1)
            << entry.yearly_downtime_min() << " min/year of downtime\n\n";

  // Step 2: where does the downtime come from?
  std::cout << "step 2 - importance ranking:\n";
  const auto imps = rascad::core::block_importance(entry);
  for (std::size_t i = 0; i < imps.size() && i < 4; ++i) {
    std::cout << "  " << std::left << std::setw(16) << imps[i].block
              << " criticality " << std::right << std::setprecision(3)
              << imps[i].criticality << ", downtime " << std::setprecision(1)
              << imps[i].yearly_downtime_min << " min/y\n";
  }
  std::cout << "  -> the power supply and memory dominate; redundancy is\n"
               "     the lever, not better parts.\n\n";

  // Step 3: compare the candidate upgrade against the baseline.
  const auto midrange = SystemModel::build(
      rascad::core::library::midrange_server());
  std::cout << "step 3 - candidate A (midrange, N+1 power, mirrored disks):\n";
  const auto cmp = rascad::core::compare_systems(entry, midrange);
  std::cout << "  downtime " << std::setprecision(1) << cmp.downtime_a_min
            << " -> " << cmp.downtime_b_min << " min/year ("
            << std::setprecision(0)
            << (1.0 - cmp.downtime_b_min / cmp.downtime_a_min) * 100.0
            << "% less)\n";
  for (std::size_t i = 0; i < cmp.blocks.size() && i < 3; ++i) {
    std::cout << "  biggest mover: " << cmp.blocks[i].block << " ("
              << std::setprecision(1) << cmp.blocks[i].delta_min()
              << " min/y)\n";
  }
  std::cout << '\n';

  // Step 4: candidate B — go all the way to a failover cluster.
  const auto cluster = SystemModel::build(
      rascad::core::library::two_node_cluster());
  std::cout << "step 4 - candidate B (two-node failover cluster): "
            << std::setprecision(1) << cluster.yearly_downtime_min()
            << " min/year\n\n";

  // Step 5: verify the winner against the independent simulator.
  const auto winner_spec = rascad::core::library::two_node_cluster();
  const auto rep = rascad::sim::replicate_system(winner_spec, 87'600.0, 60, 7);
  const auto ci = rep.availability.confidence_interval();
  std::cout << "step 5 - simulator check on candidate B (60 x 10 years):\n"
            << std::setprecision(7) << "  analytic  "
            << cluster.availability() << "\n  simulated "
            << rep.availability.mean() << "  (95% CI [" << ci.lo << ", "
            << ci.hi << "])\n";
  std::cout << (ci.contains(cluster.availability())
                    ? "  -> consistent; ship it.\n"
                    : "  -> INCONSISTENT; investigate before shipping.\n");
  return 0;
}
