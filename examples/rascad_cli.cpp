// rascad_cli — command-line front end: load a `.rsc` model, validate it,
// solve it, and emit the measures or a full Markdown report.
//
//   rascad_cli solve <model.rsc> [parts.csv]   measures only
//   rascad_cli report <model.rsc> [parts.csv]  full Markdown report
//   rascad_cli check <model.rsc>               validate and list issues
//   rascad_cli dot <model.rsc>                 Graphviz of generated chains
//   rascad_cli importance <model.rsc>          block importance ranking
//   rascad_cli simulate <model.rsc> <hours> <reps>  Monte-Carlo estimate
//   rascad_cli library                         list built-in models
//   rascad_cli library <name>                  dump a built-in model as .rsc
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "core/compare.hpp"
#include "core/export_dot.hpp"
#include "core/importance.hpp"
#include "mg/explain.hpp"
#include "core/library.hpp"
#include "core/partsdb.hpp"
#include "core/project.hpp"
#include "core/report.hpp"
#include "obs/jsonl.hpp"
#include "sim/system_sim.hpp"
#include "spec/parser.hpp"
#include "spec/validate.hpp"
#include "spec/writer.hpp"

namespace {

int usage() {
  std::cerr << "usage: rascad_cli solve|report <model.rsc> [parts.csv]\n"
               "       rascad_cli check|dot|importance <model.rsc>\n"
               "       rascad_cli library [name]\n";
  return 2;
}

/// Loads the model, optionally enriching it from a parts-database CSV.
rascad::core::Project load(const std::string& path,
                           const char* parts_path) {
  auto model = rascad::spec::parse_model_file(path);
  if (parts_path) {
    const auto db = rascad::core::PartsDatabase::from_csv_file(parts_path);
    const auto report = rascad::core::apply_parts_database(model, db);
    for (const auto& line : report.enriched) {
      std::cerr << "parts: " << line << '\n';
    }
    for (const auto& line : report.unknown_parts) {
      std::cerr << "parts: unknown " << line << '\n';
    }
  }
  return rascad::core::Project::from_spec(std::move(model));
}

int cmd_check(const std::string& path) {
  const auto model = rascad::spec::parse_model_file(path);
  const auto report = rascad::spec::validate(model);
  std::cout << report.to_string();
  if (report.ok()) {
    std::cout << "ok: " << model.diagrams.size() << " diagram(s), root '"
              << model.root().name << "'\n";
    return 0;
  }
  std::cout << report.error_count() << " error(s)\n";
  return 1;
}

int cmd_dot(const std::string& path) {
  const auto project = load(path, nullptr);
  rascad::core::write_system_dot(std::cout, project.system());
  return 0;
}

int cmd_importance(const std::string& path) {
  const auto project = load(path, nullptr);
  const auto imps = rascad::core::block_importance(project.system());
  std::cout << std::left << std::setw(24) << "block" << std::right
            << std::setw(13) << "criticality" << std::setw(12) << "Birnbaum"
            << std::setw(10) << "RAW" << std::setw(10) << "RRW"
            << std::setw(14) << "dt (min/y)" << '\n';
  for (const auto& i : imps) {
    std::cout << std::left << std::setw(24) << i.block.substr(0, 23)
              << std::right << std::setw(13) << std::setprecision(4)
              << i.criticality << std::setw(12) << i.birnbaum << std::setw(10)
              << std::setprecision(1) << std::fixed << i.raw << std::setw(10)
              << i.rrw << std::setw(14) << std::setprecision(3)
              << i.yearly_downtime_min << '\n';
    std::cout.unsetf(std::ios::fixed);
  }
  return 0;
}

int cmd_solve(const std::string& path, const char* parts) {
  const auto project = load(path, parts);
  std::cout << "availability          " << project.availability() << '\n';
  std::cout << "yearly downtime (min) " << project.yearly_downtime_min()
            << '\n';
  std::cout << "system MTBF (h)       " << project.mtbf_h() << '\n';
  std::cout << "interval availability " << project.interval_availability_at_mission()
            << "  (mission "
            << project.spec().globals.mission_time_h << " h)\n";
  std::cout << "reliability at mission " << project.reliability_at_mission()
            << '\n';
  return 0;
}

int cmd_report(const std::string& path, const char* parts) {
  const auto project = load(path, parts);
  rascad::core::ReportOptions opts;
  opts.include_chain_dumps = true;
  rascad::core::write_report(std::cout, project.system(), opts);
  return 0;
}

int cmd_compare(const std::string& path_a, const std::string& path_b) {
  const auto a = load(path_a, nullptr);
  const auto b = load(path_b, nullptr);
  rascad::core::write_comparison(
      std::cout, rascad::core::compare_systems(a.system(), b.system()));
  return 0;
}

int cmd_explain(const std::string& path) {
  const auto model = rascad::spec::parse_model_file(path);
  rascad::spec::validate_or_throw(model);
  for (const auto& diagram : model.diagrams) {
    std::cout << "diagram '" << diagram.name << "'\n";
    for (const auto& block : diagram.blocks) {
      if (block.subdiagram) {
        std::cout << "block '" << block.name << "': expands into subdiagram '"
                  << *block.subdiagram << "'\n";
      }
      if (block.has_own_failures()) {
        std::cout << rascad::mg::explain(block, model.globals);
      }
      std::cout << '\n';
    }
  }
  return 0;
}

int cmd_simulate(const std::string& path, int argc, char** argv) {
  const double horizon = argc > 3 ? std::atof(argv[3]) : 8760.0;
  const std::size_t reps = argc > 4
                               ? static_cast<std::size_t>(std::atoll(argv[4]))
                               : 50;
  const auto model = rascad::spec::parse_model_file(path);
  const auto project = rascad::core::Project::from_spec(model);
  const auto rep = rascad::sim::replicate_system(model, horizon, reps, 1);
  const auto ci = rep.availability.confidence_interval();
  std::cout << std::setprecision(8);
  std::cout << "analytic availability : " << project.availability() << '\n';
  std::cout << "simulated (n=" << reps << ", " << horizon
            << " h): " << rep.availability.mean() << "  95% CI [" << ci.lo
            << ", " << ci.hi << "]\n";
  std::cout << "simulated downtime    : " << std::setprecision(2)
            << std::fixed << rep.downtime_minutes.mean()
            << " min per interval, " << rep.outages.mean()
            << " outages on average\n";
  return 0;
}

int cmd_library(int argc, char** argv) {
  const auto entries = rascad::core::library::all_models();
  if (argc < 3) {
    for (const auto& e : entries) std::cout << e.name << '\n';
    return 0;
  }
  const std::string name = argv[2];
  for (const auto& e : entries) {
    if (e.name == name) {
      rascad::spec::write_model(std::cout, e.factory());
      return 0;
    }
  }
  std::cerr << "no library model named '" << name << "'\n";
  return 1;
}

int run_cli(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "library") return cmd_library(argc, argv);
    if (argc < 3) return usage();
    const char* parts = argc > 3 ? argv[3] : nullptr;
    if (cmd == "check") return cmd_check(argv[2]);
    if (cmd == "dot") return cmd_dot(argv[2]);
    if (cmd == "importance") return cmd_importance(argv[2]);
    if (cmd == "solve") return cmd_solve(argv[2], parts);
    if (cmd == "report") return cmd_report(argv[2], parts);
    if (cmd == "simulate") return cmd_simulate(argv[2], argc, argv);
    if (cmd == "explain") return cmd_explain(argv[2]);
    if (cmd == "compare" && argc > 3) return cmd_compare(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_cli(argc, argv);
  // One JSONL trace per invocation when RASCAD_OBS=1.
  rascad::obs::dump_if_enabled();
  return rc;
}
