// Expert-mode walkthrough: the GMB module. RAS experts build Markov,
// semi-Markov, and RBD models directly (instead of relying on automatic
// generation) and compose them hierarchically; this example does all three
// through the builder API and through the `.gmb` text format, then uses a
// GMB model as the independent comparator for an MG-generated block — the
// paper's combined-MG-and-GMB workflow.
#include <iomanip>
#include <iostream>

#include "gmb/parser.hpp"
#include "gmb/workspace.hpp"
#include "markov/steady_state.hpp"
#include "mg/generator.hpp"
#include "semimarkov/smp.hpp"

int main() {
  rascad::gmb::Workspace ws;

  // 1. A Markov chain built state-by-state: CPU board with failure,
  //    recovery, and a rare double-fault path.
  {
    rascad::markov::CtmcBuilder b;
    const auto ok = b.add_state("Ok", 1.0);
    const auto degraded = b.add_state("Degraded", 1.0);
    const auto down = b.add_state("Down", 0.0);
    b.add_transition(ok, degraded, 4e-5);
    b.add_transition(degraded, ok, 1.0 / 53.0);
    b.add_transition(degraded, down, 2e-5);
    b.add_transition(down, degraded, 1.0 / 4.8);
    ws.add_markov("cpu-board", b.build());
  }

  // 2. A semi-Markov disk model: Weibull wear-out, lognormal repair —
  //    distributions a plain CTMC cannot express.
  {
    rascad::semimarkov::SmpBuilder sb;
    const auto up =
        sb.add_state("Up", 1.0, rascad::dist::weibull(1.4, 400'000.0));
    const auto repair = sb.add_state(
        "Repair", 0.0, rascad::dist::lognormal_mean_cv(5.5, 0.8));
    sb.add_transition(up, repair, 1.0);
    sb.add_transition(repair, up, 1.0);
    ws.add_semi_markov("disk", sb.build());
  }

  // 3. The same workspace extended from the text format: an RBD that
  //    references both models hierarchically.
  rascad::gmb::parse_into(R"(
markov "nic" {
  state "Up" reward = 1
  state "Down" reward = 0
  arc "Up" "Down" rate = 0.000002
  arc "Down" "Up" rate = 0.2
}

rbd "storage-node" {
  series {
    ref "cpu-board"
    ref "disk"
    parallel { ref "nic"
               leaf "backup-nic" availability = 0.99999 }
  }
}
)",
                          ws);

  std::cout << std::setprecision(9);
  std::cout << "GMB workspace models:\n";
  for (const auto& name : ws.model_names()) {
    std::cout << "  " << std::left << std::setw(14) << name
              << " availability " << ws.availability(name) << '\n';
  }

  // 4. MG-vs-GMB cross-check: the generated lean Type-1 chain against a
  //    hand-built equivalent (what the paper's Section 5 does against
  //    SHARPE/MEADEP).
  rascad::spec::BlockSpec psu;
  psu.name = "PSU";
  psu.quantity = 2;
  psu.min_quantity = 1;
  psu.mtbf_h = 150'000.0;
  psu.mttr_corrective_min = 45.0;
  psu.service_response_h = 4.0;
  psu.recovery = rascad::spec::Transparency::kTransparent;
  psu.repair = rascad::spec::Transparency::kTransparent;
  rascad::spec::GlobalParams g;
  const auto generated = rascad::mg::generate(psu, g);
  const auto steady = rascad::markov::solve_steady_state(generated.chain);
  const double a_mg =
      rascad::markov::expected_reward(generated.chain, steady.pi);

  rascad::markov::CtmcBuilder hand;
  const auto s0 = hand.add_state("both-up", 1.0);
  const auto s1 = hand.add_state("one-down", 1.0);
  const auto s2 = hand.add_state("both-down", 0.0);
  hand.add_transition(s0, s1, 2.0 / 150'000.0);
  hand.add_transition(s1, s0, 1.0 / 52.75);
  hand.add_transition(s1, s2, 1.0 / 150'000.0);
  hand.add_transition(s2, s1, 1.0 / 4.75);
  ws.add_markov("psu-by-hand", hand.build());

  std::cout << "\nMG generated PSU availability : " << a_mg << '\n';
  std::cout << "GMB hand-built equivalent     : "
            << ws.availability("psu-by-hand") << '\n';
  std::cout << "relative downtime error       : "
            << std::abs((1 - a_mg) - (1 - ws.availability("psu-by-hand"))) /
                   (1 - a_mg)
            << "  (paper's validation band: < 0.002)\n";
  return 0;
}
