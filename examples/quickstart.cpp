// Quickstart: describe a small server in the engineering language, let the
// Model Generator build and solve the underlying Markov/RBD hierarchy, and
// read off the paper's measure set. No Markov modeling knowledge required —
// exactly the MG use case.
#include <iostream>

#include "core/project.hpp"
#include "core/report.hpp"

int main() {
  // A model is a tree of diagrams; each block carries the engineering
  // parameters of the paper's Section 3 (MTBF, MTTR parts, redundancy,
  // recovery/repair transparency...).
  const char* model = R"(
title = "Quickstart Server"
globals {
  reboot_time  = 8 min     # Tboot
  mttm         = 48 h      # service restriction time (deferred repair)
  mttrfid      = 4 h       # repair from incorrect diagnosis
  mission_time = 8760 h    # one year
}

diagram "Quickstart Server" {
  block "System Board" {
    mtbf = 250000 h
    mttr_diagnosis = 15 min  mttr_corrective = 45 min  mttr_verification = 15 min
    service_response = 4 h
    p_correct_diagnosis = 0.98
  }
  block "Power Supply" {           # N+1 redundant, fully hot-pluggable
    quantity = 2  min_quantity = 1
    mtbf = 150000 h
    mttr_corrective = 20 min  service_response = 4 h
    recovery = transparent  repair = transparent
  }
  block "CPU Module" {             # redundant, but recovery needs a reboot
    quantity = 4  min_quantity = 3
    mtbf = 500000 h  transient_rate = 2000 fit
    mttr_corrective = 30 min  service_response = 4 h
    recovery = nontransparent  ar_time = 5 min
    repair = transparent
  }
  block "Operating System" {       # software: transient faults only
    transient_rate = 20000 fit
  }
}
)";

  try {
    const rascad::core::Project project =
        rascad::core::Project::from_string(model);

    std::cout << "steady-state availability : " << project.availability()
              << '\n';
    std::cout << "yearly downtime           : "
              << project.yearly_downtime_min() << " minutes\n";
    std::cout << "system MTBF               : " << project.mtbf_h()
              << " hours\n";
    std::cout << "interval availability (1y): "
              << project.interval_availability_at_mission() << '\n';
    std::cout << "reliability at 1 year     : "
              << project.reliability_at_mission() << "\n\n";

    // Every block's generated chain is inspectable.
    for (const auto& block : project.system().blocks()) {
      std::cout << block.block.name << ": "
                << rascad::mg::to_string(block.type) << ", "
                << block.chain->size() << " states, availability "
                << block.availability << '\n';
    }

    // Documentation generation: a full Markdown report.
    std::cout << "\n--- report ---\n"
              << rascad::core::report_markdown(project.system());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
