file(REMOVE_RECURSE
  "CMakeFiles/bench_field_e10000.dir/bench_field_e10000.cpp.o"
  "CMakeFiles/bench_field_e10000.dir/bench_field_e10000.cpp.o.d"
  "bench_field_e10000"
  "bench_field_e10000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_field_e10000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
