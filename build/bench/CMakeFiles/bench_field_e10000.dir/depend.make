# Empty dependencies file for bench_field_e10000.
# This may be replaced when dependencies are built.
