# Empty compiler generated dependencies file for bench_model_types.
# This may be replaced when dependencies are built.
