file(REMOVE_RECURSE
  "CMakeFiles/bench_model_types.dir/bench_model_types.cpp.o"
  "CMakeFiles/bench_model_types.dir/bench_model_types.cpp.o.d"
  "bench_model_types"
  "bench_model_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
