file(REMOVE_RECURSE
  "CMakeFiles/bench_parametric.dir/bench_parametric.cpp.o"
  "CMakeFiles/bench_parametric.dir/bench_parametric.cpp.o.d"
  "bench_parametric"
  "bench_parametric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
