file(REMOVE_RECURSE
  "CMakeFiles/bench_smp.dir/bench_smp.cpp.o"
  "CMakeFiles/bench_smp.dir/bench_smp.cpp.o.d"
  "bench_smp"
  "bench_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
