# Empty dependencies file for bench_fig3_type0.
# This may be replaced when dependencies are built.
