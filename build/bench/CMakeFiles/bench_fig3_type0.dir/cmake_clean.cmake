file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_type0.dir/bench_fig3_type0.cpp.o"
  "CMakeFiles/bench_fig3_type0.dir/bench_fig3_type0.cpp.o.d"
  "bench_fig3_type0"
  "bench_fig3_type0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_type0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
