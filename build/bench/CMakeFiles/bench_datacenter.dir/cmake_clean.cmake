file(REMOVE_RECURSE
  "CMakeFiles/bench_datacenter.dir/bench_datacenter.cpp.o"
  "CMakeFiles/bench_datacenter.dir/bench_datacenter.cpp.o.d"
  "bench_datacenter"
  "bench_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
