# Empty compiler generated dependencies file for bench_datacenter.
# This may be replaced when dependencies are built.
