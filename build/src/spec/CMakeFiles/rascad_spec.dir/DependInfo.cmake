
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/lexer.cpp" "src/spec/CMakeFiles/rascad_spec.dir/lexer.cpp.o" "gcc" "src/spec/CMakeFiles/rascad_spec.dir/lexer.cpp.o.d"
  "/root/repo/src/spec/parser.cpp" "src/spec/CMakeFiles/rascad_spec.dir/parser.cpp.o" "gcc" "src/spec/CMakeFiles/rascad_spec.dir/parser.cpp.o.d"
  "/root/repo/src/spec/validate.cpp" "src/spec/CMakeFiles/rascad_spec.dir/validate.cpp.o" "gcc" "src/spec/CMakeFiles/rascad_spec.dir/validate.cpp.o.d"
  "/root/repo/src/spec/writer.cpp" "src/spec/CMakeFiles/rascad_spec.dir/writer.cpp.o" "gcc" "src/spec/CMakeFiles/rascad_spec.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
