file(REMOVE_RECURSE
  "CMakeFiles/rascad_spec.dir/lexer.cpp.o"
  "CMakeFiles/rascad_spec.dir/lexer.cpp.o.d"
  "CMakeFiles/rascad_spec.dir/parser.cpp.o"
  "CMakeFiles/rascad_spec.dir/parser.cpp.o.d"
  "CMakeFiles/rascad_spec.dir/validate.cpp.o"
  "CMakeFiles/rascad_spec.dir/validate.cpp.o.d"
  "CMakeFiles/rascad_spec.dir/writer.cpp.o"
  "CMakeFiles/rascad_spec.dir/writer.cpp.o.d"
  "librascad_spec.a"
  "librascad_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
