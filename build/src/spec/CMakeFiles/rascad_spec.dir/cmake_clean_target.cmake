file(REMOVE_RECURSE
  "librascad_spec.a"
)
