# Empty compiler generated dependencies file for rascad_spec.
# This may be replaced when dependencies are built.
