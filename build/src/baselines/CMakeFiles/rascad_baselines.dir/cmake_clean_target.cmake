file(REMOVE_RECURSE
  "librascad_baselines.a"
)
