# Empty dependencies file for rascad_baselines.
# This may be replaced when dependencies are built.
