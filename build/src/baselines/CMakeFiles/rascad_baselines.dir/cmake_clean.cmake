file(REMOVE_RECURSE
  "CMakeFiles/rascad_baselines.dir/baselines.cpp.o"
  "CMakeFiles/rascad_baselines.dir/baselines.cpp.o.d"
  "librascad_baselines.a"
  "librascad_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
