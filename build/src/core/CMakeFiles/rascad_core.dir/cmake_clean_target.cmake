file(REMOVE_RECURSE
  "librascad_core.a"
)
