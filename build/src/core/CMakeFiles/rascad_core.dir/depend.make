# Empty dependencies file for rascad_core.
# This may be replaced when dependencies are built.
