file(REMOVE_RECURSE
  "CMakeFiles/rascad_core.dir/compare.cpp.o"
  "CMakeFiles/rascad_core.dir/compare.cpp.o.d"
  "CMakeFiles/rascad_core.dir/csv.cpp.o"
  "CMakeFiles/rascad_core.dir/csv.cpp.o.d"
  "CMakeFiles/rascad_core.dir/export_dot.cpp.o"
  "CMakeFiles/rascad_core.dir/export_dot.cpp.o.d"
  "CMakeFiles/rascad_core.dir/importance.cpp.o"
  "CMakeFiles/rascad_core.dir/importance.cpp.o.d"
  "CMakeFiles/rascad_core.dir/library.cpp.o"
  "CMakeFiles/rascad_core.dir/library.cpp.o.d"
  "CMakeFiles/rascad_core.dir/partsdb.cpp.o"
  "CMakeFiles/rascad_core.dir/partsdb.cpp.o.d"
  "CMakeFiles/rascad_core.dir/project.cpp.o"
  "CMakeFiles/rascad_core.dir/project.cpp.o.d"
  "CMakeFiles/rascad_core.dir/report.cpp.o"
  "CMakeFiles/rascad_core.dir/report.cpp.o.d"
  "CMakeFiles/rascad_core.dir/sweep.cpp.o"
  "CMakeFiles/rascad_core.dir/sweep.cpp.o.d"
  "librascad_core.a"
  "librascad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
