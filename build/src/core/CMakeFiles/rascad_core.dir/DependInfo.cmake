
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compare.cpp" "src/core/CMakeFiles/rascad_core.dir/compare.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/compare.cpp.o.d"
  "/root/repo/src/core/csv.cpp" "src/core/CMakeFiles/rascad_core.dir/csv.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/csv.cpp.o.d"
  "/root/repo/src/core/export_dot.cpp" "src/core/CMakeFiles/rascad_core.dir/export_dot.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/export_dot.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "src/core/CMakeFiles/rascad_core.dir/importance.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/importance.cpp.o.d"
  "/root/repo/src/core/library.cpp" "src/core/CMakeFiles/rascad_core.dir/library.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/library.cpp.o.d"
  "/root/repo/src/core/partsdb.cpp" "src/core/CMakeFiles/rascad_core.dir/partsdb.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/partsdb.cpp.o.d"
  "/root/repo/src/core/project.cpp" "src/core/CMakeFiles/rascad_core.dir/project.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/project.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/rascad_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/rascad_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/rascad_core.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mg/CMakeFiles/rascad_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/rascad_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/rascad_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rascad_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascad_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
