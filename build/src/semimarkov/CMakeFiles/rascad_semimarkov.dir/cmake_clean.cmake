file(REMOVE_RECURSE
  "CMakeFiles/rascad_semimarkov.dir/smp.cpp.o"
  "CMakeFiles/rascad_semimarkov.dir/smp.cpp.o.d"
  "librascad_semimarkov.a"
  "librascad_semimarkov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_semimarkov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
