# Empty compiler generated dependencies file for rascad_semimarkov.
# This may be replaced when dependencies are built.
