
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semimarkov/smp.cpp" "src/semimarkov/CMakeFiles/rascad_semimarkov.dir/smp.cpp.o" "gcc" "src/semimarkov/CMakeFiles/rascad_semimarkov.dir/smp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/markov/CMakeFiles/rascad_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rascad_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascad_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
