file(REMOVE_RECURSE
  "librascad_semimarkov.a"
)
