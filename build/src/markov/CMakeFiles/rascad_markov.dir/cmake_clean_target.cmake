file(REMOVE_RECURSE
  "librascad_markov.a"
)
