# Empty dependencies file for rascad_markov.
# This may be replaced when dependencies are built.
