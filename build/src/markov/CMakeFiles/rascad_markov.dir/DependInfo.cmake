
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/absorbing.cpp" "src/markov/CMakeFiles/rascad_markov.dir/absorbing.cpp.o" "gcc" "src/markov/CMakeFiles/rascad_markov.dir/absorbing.cpp.o.d"
  "/root/repo/src/markov/ctmc.cpp" "src/markov/CMakeFiles/rascad_markov.dir/ctmc.cpp.o" "gcc" "src/markov/CMakeFiles/rascad_markov.dir/ctmc.cpp.o.d"
  "/root/repo/src/markov/dtmc.cpp" "src/markov/CMakeFiles/rascad_markov.dir/dtmc.cpp.o" "gcc" "src/markov/CMakeFiles/rascad_markov.dir/dtmc.cpp.o.d"
  "/root/repo/src/markov/ode.cpp" "src/markov/CMakeFiles/rascad_markov.dir/ode.cpp.o" "gcc" "src/markov/CMakeFiles/rascad_markov.dir/ode.cpp.o.d"
  "/root/repo/src/markov/steady_state.cpp" "src/markov/CMakeFiles/rascad_markov.dir/steady_state.cpp.o" "gcc" "src/markov/CMakeFiles/rascad_markov.dir/steady_state.cpp.o.d"
  "/root/repo/src/markov/transient.cpp" "src/markov/CMakeFiles/rascad_markov.dir/transient.cpp.o" "gcc" "src/markov/CMakeFiles/rascad_markov.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/rascad_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
