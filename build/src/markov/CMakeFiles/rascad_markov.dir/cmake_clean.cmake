file(REMOVE_RECURSE
  "CMakeFiles/rascad_markov.dir/absorbing.cpp.o"
  "CMakeFiles/rascad_markov.dir/absorbing.cpp.o.d"
  "CMakeFiles/rascad_markov.dir/ctmc.cpp.o"
  "CMakeFiles/rascad_markov.dir/ctmc.cpp.o.d"
  "CMakeFiles/rascad_markov.dir/dtmc.cpp.o"
  "CMakeFiles/rascad_markov.dir/dtmc.cpp.o.d"
  "CMakeFiles/rascad_markov.dir/ode.cpp.o"
  "CMakeFiles/rascad_markov.dir/ode.cpp.o.d"
  "CMakeFiles/rascad_markov.dir/steady_state.cpp.o"
  "CMakeFiles/rascad_markov.dir/steady_state.cpp.o.d"
  "CMakeFiles/rascad_markov.dir/transient.cpp.o"
  "CMakeFiles/rascad_markov.dir/transient.cpp.o.d"
  "librascad_markov.a"
  "librascad_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
