# Empty compiler generated dependencies file for rascad_sim.
# This may be replaced when dependencies are built.
