file(REMOVE_RECURSE
  "CMakeFiles/rascad_sim.dir/block_sim.cpp.o"
  "CMakeFiles/rascad_sim.dir/block_sim.cpp.o.d"
  "CMakeFiles/rascad_sim.dir/chain_sim.cpp.o"
  "CMakeFiles/rascad_sim.dir/chain_sim.cpp.o.d"
  "CMakeFiles/rascad_sim.dir/rng.cpp.o"
  "CMakeFiles/rascad_sim.dir/rng.cpp.o.d"
  "CMakeFiles/rascad_sim.dir/stats.cpp.o"
  "CMakeFiles/rascad_sim.dir/stats.cpp.o.d"
  "CMakeFiles/rascad_sim.dir/system_sim.cpp.o"
  "CMakeFiles/rascad_sim.dir/system_sim.cpp.o.d"
  "librascad_sim.a"
  "librascad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
