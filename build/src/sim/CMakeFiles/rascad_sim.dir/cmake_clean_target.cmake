file(REMOVE_RECURSE
  "librascad_sim.a"
)
