
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_sim.cpp" "src/sim/CMakeFiles/rascad_sim.dir/block_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rascad_sim.dir/block_sim.cpp.o.d"
  "/root/repo/src/sim/chain_sim.cpp" "src/sim/CMakeFiles/rascad_sim.dir/chain_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rascad_sim.dir/chain_sim.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/sim/CMakeFiles/rascad_sim.dir/rng.cpp.o" "gcc" "src/sim/CMakeFiles/rascad_sim.dir/rng.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/rascad_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/rascad_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/system_sim.cpp" "src/sim/CMakeFiles/rascad_sim.dir/system_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rascad_sim.dir/system_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/rascad_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rascad_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/mg/CMakeFiles/rascad_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/rascad_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascad_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/rascad_rbd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
