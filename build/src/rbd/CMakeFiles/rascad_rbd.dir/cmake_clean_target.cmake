file(REMOVE_RECURSE
  "librascad_rbd.a"
)
