# Empty compiler generated dependencies file for rascad_rbd.
# This may be replaced when dependencies are built.
