file(REMOVE_RECURSE
  "CMakeFiles/rascad_rbd.dir/rbd.cpp.o"
  "CMakeFiles/rascad_rbd.dir/rbd.cpp.o.d"
  "librascad_rbd.a"
  "librascad_rbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_rbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
