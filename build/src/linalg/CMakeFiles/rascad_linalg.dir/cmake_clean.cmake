file(REMOVE_RECURSE
  "CMakeFiles/rascad_linalg.dir/csr.cpp.o"
  "CMakeFiles/rascad_linalg.dir/csr.cpp.o.d"
  "CMakeFiles/rascad_linalg.dir/dense.cpp.o"
  "CMakeFiles/rascad_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/rascad_linalg.dir/iterative.cpp.o"
  "CMakeFiles/rascad_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/rascad_linalg.dir/lu.cpp.o"
  "CMakeFiles/rascad_linalg.dir/lu.cpp.o.d"
  "librascad_linalg.a"
  "librascad_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
