file(REMOVE_RECURSE
  "librascad_linalg.a"
)
