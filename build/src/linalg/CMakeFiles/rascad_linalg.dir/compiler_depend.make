# Empty compiler generated dependencies file for rascad_linalg.
# This may be replaced when dependencies are built.
