file(REMOVE_RECURSE
  "librascad_dist.a"
)
