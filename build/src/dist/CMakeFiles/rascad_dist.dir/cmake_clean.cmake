file(REMOVE_RECURSE
  "CMakeFiles/rascad_dist.dir/distribution.cpp.o"
  "CMakeFiles/rascad_dist.dir/distribution.cpp.o.d"
  "librascad_dist.a"
  "librascad_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
