# Empty dependencies file for rascad_dist.
# This may be replaced when dependencies are built.
