# Empty compiler generated dependencies file for rascad_mg.
# This may be replaced when dependencies are built.
