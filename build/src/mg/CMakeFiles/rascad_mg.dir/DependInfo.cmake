
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mg/explain.cpp" "src/mg/CMakeFiles/rascad_mg.dir/explain.cpp.o" "gcc" "src/mg/CMakeFiles/rascad_mg.dir/explain.cpp.o.d"
  "/root/repo/src/mg/generator.cpp" "src/mg/CMakeFiles/rascad_mg.dir/generator.cpp.o" "gcc" "src/mg/CMakeFiles/rascad_mg.dir/generator.cpp.o.d"
  "/root/repo/src/mg/measures.cpp" "src/mg/CMakeFiles/rascad_mg.dir/measures.cpp.o" "gcc" "src/mg/CMakeFiles/rascad_mg.dir/measures.cpp.o.d"
  "/root/repo/src/mg/smp_generator.cpp" "src/mg/CMakeFiles/rascad_mg.dir/smp_generator.cpp.o" "gcc" "src/mg/CMakeFiles/rascad_mg.dir/smp_generator.cpp.o.d"
  "/root/repo/src/mg/system.cpp" "src/mg/CMakeFiles/rascad_mg.dir/system.cpp.o" "gcc" "src/mg/CMakeFiles/rascad_mg.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/rascad_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rascad_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/rascad_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascad_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
