file(REMOVE_RECURSE
  "CMakeFiles/rascad_mg.dir/explain.cpp.o"
  "CMakeFiles/rascad_mg.dir/explain.cpp.o.d"
  "CMakeFiles/rascad_mg.dir/generator.cpp.o"
  "CMakeFiles/rascad_mg.dir/generator.cpp.o.d"
  "CMakeFiles/rascad_mg.dir/measures.cpp.o"
  "CMakeFiles/rascad_mg.dir/measures.cpp.o.d"
  "CMakeFiles/rascad_mg.dir/smp_generator.cpp.o"
  "CMakeFiles/rascad_mg.dir/smp_generator.cpp.o.d"
  "CMakeFiles/rascad_mg.dir/system.cpp.o"
  "CMakeFiles/rascad_mg.dir/system.cpp.o.d"
  "librascad_mg.a"
  "librascad_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
