file(REMOVE_RECURSE
  "librascad_mg.a"
)
