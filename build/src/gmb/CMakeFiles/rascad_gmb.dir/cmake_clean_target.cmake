file(REMOVE_RECURSE
  "librascad_gmb.a"
)
