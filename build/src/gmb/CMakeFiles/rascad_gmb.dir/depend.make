# Empty dependencies file for rascad_gmb.
# This may be replaced when dependencies are built.
