file(REMOVE_RECURSE
  "CMakeFiles/rascad_gmb.dir/parser.cpp.o"
  "CMakeFiles/rascad_gmb.dir/parser.cpp.o.d"
  "CMakeFiles/rascad_gmb.dir/workspace.cpp.o"
  "CMakeFiles/rascad_gmb.dir/workspace.cpp.o.d"
  "librascad_gmb.a"
  "librascad_gmb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_gmb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
