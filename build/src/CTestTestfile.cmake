# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("dist")
subdirs("markov")
subdirs("semimarkov")
subdirs("rbd")
subdirs("spec")
subdirs("gmb")
subdirs("mg")
subdirs("baselines")
subdirs("sim")
subdirs("core")
