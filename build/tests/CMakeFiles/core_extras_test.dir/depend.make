# Empty dependencies file for core_extras_test.
# This may be replaced when dependencies are built.
