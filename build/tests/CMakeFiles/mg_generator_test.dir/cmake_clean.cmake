file(REMOVE_RECURSE
  "CMakeFiles/mg_generator_test.dir/mg_generator_test.cpp.o"
  "CMakeFiles/mg_generator_test.dir/mg_generator_test.cpp.o.d"
  "mg_generator_test"
  "mg_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
