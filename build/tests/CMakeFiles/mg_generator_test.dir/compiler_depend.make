# Empty compiler generated dependencies file for mg_generator_test.
# This may be replaced when dependencies are built.
