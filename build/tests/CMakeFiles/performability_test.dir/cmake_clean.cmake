file(REMOVE_RECURSE
  "CMakeFiles/performability_test.dir/performability_test.cpp.o"
  "CMakeFiles/performability_test.dir/performability_test.cpp.o.d"
  "performability_test"
  "performability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
