file(REMOVE_RECURSE
  "CMakeFiles/smp_generator_test.dir/smp_generator_test.cpp.o"
  "CMakeFiles/smp_generator_test.dir/smp_generator_test.cpp.o.d"
  "smp_generator_test"
  "smp_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
