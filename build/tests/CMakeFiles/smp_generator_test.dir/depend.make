# Empty dependencies file for smp_generator_test.
# This may be replaced when dependencies are built.
