# Empty compiler generated dependencies file for compare_explain_test.
# This may be replaced when dependencies are built.
