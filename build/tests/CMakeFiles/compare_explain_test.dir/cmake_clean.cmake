file(REMOVE_RECURSE
  "CMakeFiles/compare_explain_test.dir/compare_explain_test.cpp.o"
  "CMakeFiles/compare_explain_test.dir/compare_explain_test.cpp.o.d"
  "compare_explain_test"
  "compare_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
