# Empty dependencies file for gmb_test.
# This may be replaced when dependencies are built.
