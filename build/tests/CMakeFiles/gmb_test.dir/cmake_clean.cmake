file(REMOVE_RECURSE
  "CMakeFiles/gmb_test.dir/gmb_test.cpp.o"
  "CMakeFiles/gmb_test.dir/gmb_test.cpp.o.d"
  "gmb_test"
  "gmb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
