# Empty dependencies file for absorption_test.
# This may be replaced when dependencies are built.
