
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rascad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gmb/CMakeFiles/rascad_gmb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rascad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mg/CMakeFiles/rascad_mg.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/rascad_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rascad_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rbd/CMakeFiles/rascad_rbd.dir/DependInfo.cmake"
  "/root/repo/build/src/semimarkov/CMakeFiles/rascad_semimarkov.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rascad_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/rascad_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rascad_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
