file(REMOVE_RECURSE
  "CMakeFiles/mg_system_test.dir/mg_system_test.cpp.o"
  "CMakeFiles/mg_system_test.dir/mg_system_test.cpp.o.d"
  "mg_system_test"
  "mg_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
