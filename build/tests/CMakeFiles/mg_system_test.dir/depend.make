# Empty dependencies file for mg_system_test.
# This may be replaced when dependencies are built.
