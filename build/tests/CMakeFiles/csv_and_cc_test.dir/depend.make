# Empty dependencies file for csv_and_cc_test.
# This may be replaced when dependencies are built.
