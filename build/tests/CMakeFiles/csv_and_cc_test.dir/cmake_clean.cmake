file(REMOVE_RECURSE
  "CMakeFiles/csv_and_cc_test.dir/csv_and_cc_test.cpp.o"
  "CMakeFiles/csv_and_cc_test.dir/csv_and_cc_test.cpp.o.d"
  "csv_and_cc_test"
  "csv_and_cc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_and_cc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
