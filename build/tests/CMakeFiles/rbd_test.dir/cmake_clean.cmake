file(REMOVE_RECURSE
  "CMakeFiles/rbd_test.dir/rbd_test.cpp.o"
  "CMakeFiles/rbd_test.dir/rbd_test.cpp.o.d"
  "rbd_test"
  "rbd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
