# Empty dependencies file for rbd_test.
# This may be replaced when dependencies are built.
