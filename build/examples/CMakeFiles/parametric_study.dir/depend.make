# Empty dependencies file for parametric_study.
# This may be replaced when dependencies are built.
