file(REMOVE_RECURSE
  "CMakeFiles/parametric_study.dir/parametric_study.cpp.o"
  "CMakeFiles/parametric_study.dir/parametric_study.cpp.o.d"
  "parametric_study"
  "parametric_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parametric_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
