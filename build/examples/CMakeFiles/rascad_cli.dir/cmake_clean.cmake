file(REMOVE_RECURSE
  "CMakeFiles/rascad_cli.dir/rascad_cli.cpp.o"
  "CMakeFiles/rascad_cli.dir/rascad_cli.cpp.o.d"
  "rascad_cli"
  "rascad_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rascad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
