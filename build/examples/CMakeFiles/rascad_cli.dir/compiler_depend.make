# Empty compiler generated dependencies file for rascad_cli.
# This may be replaced when dependencies are built.
