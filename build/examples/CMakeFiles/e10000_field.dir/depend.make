# Empty dependencies file for e10000_field.
# This may be replaced when dependencies are built.
