file(REMOVE_RECURSE
  "CMakeFiles/e10000_field.dir/e10000_field.cpp.o"
  "CMakeFiles/e10000_field.dir/e10000_field.cpp.o.d"
  "e10000_field"
  "e10000_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10000_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
