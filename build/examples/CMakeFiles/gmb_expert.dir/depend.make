# Empty dependencies file for gmb_expert.
# This may be replaced when dependencies are built.
