file(REMOVE_RECURSE
  "CMakeFiles/gmb_expert.dir/gmb_expert.cpp.o"
  "CMakeFiles/gmb_expert.dir/gmb_expert.cpp.o.d"
  "gmb_expert"
  "gmb_expert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmb_expert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
