# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter "/root/repo/build/examples/datacenter")
set_tests_properties(example_datacenter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster "/root/repo/build/examples/cluster_failover")
set_tests_properties(example_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gmb_expert "/root/repo/build/examples/gmb_expert")
set_tests_properties(example_gmb_expert PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_architecture_study "/root/repo/build/examples/architecture_study")
set_tests_properties(example_architecture_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_solve "/root/repo/build/examples/rascad_cli" "solve" "/root/repo/examples/models/web_shop.rsc")
set_tests_properties(example_cli_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_check "/root/repo/build/examples/rascad_cli" "check" "/root/repo/examples/models/web_shop.rsc")
set_tests_properties(example_cli_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
